// Package stats provides the summary statistics used to aggregate simulator
// output: online mean/variance accumulation (Welford), confidence intervals,
// quantiles and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance using Welford's online
// algorithm, which is numerically stable for the long accumulation runs the
// sweep harness performs. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll incorporates a batch of observations.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (NaN when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased sample variance (NaN when n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation (NaN when n < 2).
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean (NaN when n < 2).
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval on the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Min returns the smallest observation (NaN when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation (NaN when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Merge folds another accumulator into a (parallel reduction), using the
// Chan et al. pairwise combination formulas.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Summary is a value snapshot of an Accumulator, convenient for CSV export.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize captures the accumulator state.
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.Mean(), StdDev: a.StdDev(), CI95: a.CI95(), Min: a.Min(), Max: a.Max()}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.2g (sd=%.3g, min=%.6g, max=%.6g)",
		s.N, s.Mean, s.CI95, s.StdDev, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs is not modified. It returns NaN on empty input or invalid q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns multiple quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width histogram over [Lo, Hi) with overflow and
// underflow counters.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against FP rounding at the edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin (NaN when empty).
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if bestCount <= 0 {
		return math.NaN()
	}
	return h.BinCenter(best)
}

// KolmogorovSmirnov returns the one-sample Kolmogorov-Smirnov statistic
// D_n = sup_x |F_n(x) - F(x)| of samples against the reference CDF. Under the
// null hypothesis that the samples are drawn from F, D_n exceeds c/sqrt(n)
// with probability ~2*exp(-2*c^2), so tests can reject at e.g. c = 2 for a
// ~0.07% false-positive rate. xs is not modified; NaN on empty input.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// The empirical CDF jumps from i/n to (i+1)/n at x; the supremum of
		// the deviation is attained at one side of a jump.
		if lo := math.Abs(f - float64(i)/n); lo > d {
			d = lo
		}
		if hi := math.Abs(f - float64(i+1)/n); hi > d {
			d = hi
		}
	}
	return d
}

// Mean computes the exact mean of a slice (convenience for tests/tools).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
