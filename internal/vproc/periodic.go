package vproc

import "fmt"

// Periodic slot names.
const (
	SlotEpochBase = "epoch-base" // full checkpoint at epoch start
	SlotBiBase    = "bi-base"    // full checkpoint at library entry (Bi)
	SlotBiLib     = "bi-lib"     // incremental library checkpoint (Bi)
)

// Periodic executes epochs under the rollback-only protocols the paper
// compares against: PurePeriodicCkpt (full checkpoints at one period
// throughout) and BiPeriodicCkpt (cheaper, library-dataset-only checkpoints
// at their own period during LIBRARY phases — the incremental-checkpointing
// optimization). Failures anywhere trigger rollback to the last checkpoint
// and deterministic replay; the LIBRARY phase gets no ABFT help.
type Periodic struct {
	RT *Runtime
	// CkptEvery is the checkpoint period, in supersteps, outside LIBRARY
	// phases (and inside them too for the pure protocol).
	CkptEvery int
	// LibraryCkptEvery, when positive, switches the LIBRARY phase to its
	// own period with partial (library-dataset-only) checkpoints — the
	// BiPeriodicCkpt protocol. Zero keeps full checkpoints at CkptEvery
	// everywhere (PurePeriodicCkpt).
	LibraryCkptEvery int
	// RemainderDatasets and LibraryDatasets partition the application data.
	RemainderDatasets []string
	LibraryDatasets   []string

	// biLibValid records that SlotBiLib is newer than SlotBiBase.
	biLibValid bool
}

func (c *Periodic) allDatasets() []string {
	out := append([]string(nil), c.RemainderDatasets...)
	return append(out, c.LibraryDatasets...)
}

func (c *Periodic) bi() bool { return c.LibraryCkptEvery > 0 }

// RunEpoch executes one epoch (generalSteps GENERAL supersteps followed by
// the library call) under the periodic protocol. The epoch starts with a
// full coordinated checkpoint so rollback never crosses an epoch boundary.
func (c *Periodic) RunEpoch(generalSteps int, fn GeneralStep, lib Library) error {
	rt := c.RT
	if err := rt.Checkpoint(SlotEpochBase, c.allDatasets()); err != nil {
		return err
	}
	rt.Stats.FullCkpts++
	total := generalSteps + lib.Steps()

	// exec runs unified step s (general then library).
	exec := func(s int) error {
		if s < generalSteps {
			step := s
			return rt.Parallel(func(p *Proc) error { return fn(p, step) })
		}
		return lib.Step(rt, s-generalSteps)
	}

	lastCkpt := 0         // first step not covered by the newest checkpoint
	slot := SlotEpochBase // newest full checkpoint slot
	c.biLibValid = false
	inLibrary := func(s int) bool { return s >= generalSteps }

	// restore rolls back to the newest consistent state.
	restore := func() error {
		if c.bi() && c.biLibValid {
			// Remainder from the library-entry base, library data from the
			// newest incremental checkpoint.
			if err := rt.RestoreAll(SlotBiBase, c.RemainderDatasets); err != nil {
				return err
			}
			return rt.RestoreAll(SlotBiLib, c.LibraryDatasets)
		}
		return rt.RestoreAll(slot, c.allDatasets())
	}

	step := 0
	for step < total {
		if victim := rt.Injector.next(rt.N()); victim >= 0 {
			if inLibrary(step) {
				rt.Stats.LibraryFails++
			} else {
				rt.Stats.GeneralFails++
			}
			rt.Kill(victim)
			rt.Respawn(victim)
			if err := restore(); err != nil {
				return fmt.Errorf("vproc: periodic rollback: %w", err)
			}
			rt.Stats.Rollbacks++
			rt.Stats.ReplayedSteps += step - lastCkpt
			step = lastCkpt
			continue
		}
		if err := exec(step); err != nil {
			return err
		}
		rt.Stats.Supersteps++
		step++

		// Bi: full checkpoint at the phase switch (the library base).
		if c.bi() && step == generalSteps {
			if err := rt.Checkpoint(SlotBiBase, c.allDatasets()); err != nil {
				return err
			}
			rt.Stats.FullCkpts++
			slot = SlotBiBase
			c.biLibValid = false
			lastCkpt = step
			continue
		}
		if step >= total {
			break
		}
		if c.bi() && inLibrary(step) {
			if (step-lastCkpt) >= c.LibraryCkptEvery && step > generalSteps {
				if err := rt.Checkpoint(SlotBiLib, c.LibraryDatasets); err != nil {
					return err
				}
				rt.Stats.PartialCkpts++
				c.biLibValid = true
				lastCkpt = step
			}
			continue
		}
		if c.CkptEvery > 0 && (step-lastCkpt) >= c.CkptEvery {
			if err := rt.Checkpoint(SlotPeriodic, c.allDatasets()); err != nil {
				return err
			}
			rt.Stats.FullCkpts++
			slot = SlotPeriodic
			c.biLibValid = false
			lastCkpt = step
		}
	}
	return nil
}
