// Package vproc is a virtual process runtime: a set of goroutine-backed
// processes with private datasets, coordinated checkpointing, failure
// injection and restart. On top of it, Composite implements the Section III
// protocol as executable code — periodic coordinated checkpoints and
// rollback/replay during GENERAL phases, forced partial checkpoints at
// library boundaries, and ABFT forward recovery inside LIBRARY phases — so
// the protocol can be exercised on live application state, not only in the
// discrete-event simulator.
//
// Failure model: the injector strikes at superstep boundaries; a failure
// invalidates the superstep in progress, destroys the victim's datasets, and
// triggers the protocol's recovery path (rollback+replay in GENERAL phases,
// checksum reconstruction in LIBRARY phases). This is the cooperative
// equivalent of a process crash in a BSP application and keeps the recovery
// semantics exact; see DESIGN.md §5-S1.
package vproc

import (
	"errors"
	"fmt"
	"sync"

	"abftckpt/internal/ckpt"
	"abftckpt/internal/rng"
)

// ErrDeadProcess is returned when work is scheduled on a failed process that
// has not been recovered.
var ErrDeadProcess = errors.New("vproc: process is dead")

// Proc is one virtual process with named local datasets.
type Proc struct {
	Rank  int
	Data  map[string][]float64
	alive bool
}

// Alive reports whether the process is currently up.
func (p *Proc) Alive() bool { return p.alive }

// Injector decides when failures strike. It draws at superstep granularity:
// each superstep fails with probability Prob, killing a uniformly chosen
// process. A nil *Injector never fails.
type Injector struct {
	Prob float64
	src  *rng.Source
	// Forced failures: map superstep counter -> rank to kill (takes
	// precedence over the random draw; used by tests).
	Forced map[int]int
	step   int
}

// NewInjector builds a random injector with per-superstep probability p.
func NewInjector(p float64, seed uint64) *Injector {
	return &Injector{Prob: p, src: rng.New(seed)}
}

// next returns the rank to kill at this superstep, or -1.
func (inj *Injector) next(n int) int {
	if inj == nil {
		return -1
	}
	s := inj.step
	inj.step++
	if inj.Forced != nil {
		if rank, ok := inj.Forced[s]; ok {
			return rank
		}
	}
	if inj.src != nil && inj.Prob > 0 && inj.src.Float64() < inj.Prob {
		return inj.src.Intn(n)
	}
	return -1
}

// RunStats counts protocol events during a run.
type RunStats struct {
	Supersteps     int
	Failures       int
	GeneralFails   int
	LibraryFails   int
	FullCkpts      int
	PartialCkpts   int
	Rollbacks      int
	ReplayedSteps  int
	AbftRecoveries int
	// SavedValues is the total number of float64 values written to the
	// checkpoint store — the I/O volume proxy behind the paper's C and CL
	// costs.
	SavedValues int
}

// Runtime manages the virtual processes and their checkpoints.
type Runtime struct {
	Procs    []*Proc
	Store    ckpt.Store
	Injector *Injector
	Stats    RunStats
	version  uint64
}

// NewRuntime creates n live processes over the given checkpoint store.
func NewRuntime(n int, store ckpt.Store, inj *Injector) *Runtime {
	if n <= 0 {
		panic("vproc: need at least one process")
	}
	rt := &Runtime{Store: store, Injector: inj}
	for i := 0; i < n; i++ {
		rt.Procs = append(rt.Procs, &Proc{Rank: i, Data: make(map[string][]float64), alive: true})
	}
	return rt
}

// N returns the process count.
func (rt *Runtime) N() int { return len(rt.Procs) }

// Parallel runs fn concurrently on every live process (one goroutine each)
// and returns the first error.
func (rt *Runtime) Parallel(fn func(p *Proc) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(rt.Procs))
	for _, p := range rt.Procs {
		if !p.alive {
			errs[p.Rank] = fmt.Errorf("%w: rank %d", ErrDeadProcess, p.Rank)
			continue
		}
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			errs[p.Rank] = fn(p)
		}(p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Kill marks rank dead and destroys its datasets (a crash loses the node's
// memory).
func (rt *Runtime) Kill(rank int) {
	p := rt.Procs[rank]
	p.alive = false
	p.Data = make(map[string][]float64)
	rt.Stats.Failures++
}

// Respawn brings a dead rank back up with empty state (the spare node of the
// paper's downtime D).
func (rt *Runtime) Respawn(rank int) {
	rt.Procs[rank].alive = true
}

// ckptName addresses a checkpoint slot for a rank.
func ckptName(slot string, rank int) string {
	return fmt.Sprintf("%s-r%d", slot, rank)
}

// Checkpoint saves the named datasets of every process under slot (a
// coordinated, possibly partial, checkpoint). Datasets absent on a process
// are skipped.
func (rt *Runtime) Checkpoint(slot string, datasets []string) error {
	rt.version++
	for _, p := range rt.Procs {
		if !p.alive {
			return fmt.Errorf("%w: rank %d during checkpoint", ErrDeadProcess, p.Rank)
		}
		parts := make(map[string][]float64)
		for _, name := range datasets {
			if d, ok := p.Data[name]; ok {
				parts[name] = d
				rt.Stats.SavedValues += len(d)
			}
		}
		if err := ckpt.Save(rt.Store, ckptName(slot, p.Rank), ckpt.NewSnapshot(rt.version, parts)); err != nil {
			return err
		}
	}
	return nil
}

// Restore reloads the named datasets of one rank from slot, leaving other
// datasets untouched.
func (rt *Runtime) Restore(slot string, rank int, datasets []string) error {
	snap, err := ckpt.Load(rt.Store, ckptName(slot, rank))
	if err != nil {
		return err
	}
	p := rt.Procs[rank]
	for _, name := range datasets {
		if d, ok := snap.Parts[name]; ok {
			p.Data[name] = append([]float64(nil), d...)
		}
	}
	return nil
}

// RestoreAll reloads the named datasets of every rank from slot.
func (rt *Runtime) RestoreAll(slot string, datasets []string) error {
	for _, p := range rt.Procs {
		if err := rt.Restore(slot, p.Rank, datasets); err != nil {
			return err
		}
	}
	return nil
}

// Gather concatenates a dataset across ranks in rank order.
func (rt *Runtime) Gather(dataset string) []float64 {
	var out []float64
	for _, p := range rt.Procs {
		out = append(out, p.Data[dataset]...)
	}
	return out
}
