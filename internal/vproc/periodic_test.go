package vproc

import "testing"

// seqLib is a deterministic library phase: each step doubles-and-increments
// the shared value, so out-of-order or repeated execution is detectable.
type seqLib struct{ steps int }

func (l seqLib) Steps() int { return l.steps }
func (l seqLib) Step(rt *Runtime, s int) error {
	return rt.Parallel(func(p *Proc) error {
		p.Data["l"][0] = p.Data["l"][0]*2 + float64(s)
		return nil
	})
}
func (l seqLib) Recover(rt *Runtime, failed int) error {
	panic("periodic protocols must not call ABFT recovery")
}

func periodicFixture(inj *Injector, libEvery int) (*Runtime, *Periodic) {
	rt := NewRuntime(2, newTestRuntime(1, nil).Store, inj)
	for _, p := range rt.Procs {
		p.Data["r"] = []float64{1}
		p.Data["l"] = []float64{1}
	}
	return rt, &Periodic{
		RT:                rt,
		CkptEvery:         2,
		LibraryCkptEvery:  libEvery,
		RemainderDatasets: []string{"r"},
		LibraryDatasets:   []string{"l"},
	}
}

func generalInc(p *Proc, s int) error {
	p.Data["r"][0] += float64(s + 1)
	return nil
}

func runPeriodic(t *testing.T, inj *Injector, libEvery int) (*Runtime, []float64, []float64) {
	t.Helper()
	rt, c := periodicFixture(inj, libEvery)
	if err := c.RunEpoch(4, generalInc, seqLib{steps: 5}); err != nil {
		t.Fatal(err)
	}
	return rt, rt.Gather("r"), rt.Gather("l")
}

// Failure-free pure periodic run: reference values.
func TestPeriodicFaultFree(t *testing.T) {
	rt, r, l := runPeriodic(t, nil, 0)
	// r: 1 +1+2+3+4 = 11; l: ((((1*2+0)*2+1)*2+2)*2+3)*2+4 = 58.
	if r[0] != 11 || l[0] != 58 {
		t.Fatalf("r=%v l=%v, want 11, 58", r[0], l[0])
	}
	if rt.Stats.Rollbacks != 0 {
		t.Fatalf("stats: %+v", rt.Stats)
	}
}

// Failures anywhere (general or library) roll back and replay, and the
// result matches the failure-free run for both pure and bi protocols.
func TestPeriodicFailuresPreserveResult(t *testing.T) {
	for _, libEvery := range []int{0, 2} {
		_, cleanR, cleanL := runPeriodic(t, nil, libEvery)
		for counter := 0; counter < 9; counter++ {
			inj := &Injector{Forced: map[int]int{counter: 1}}
			rt, r, l := runPeriodic(t, inj, libEvery)
			if r[0] != cleanR[0] || l[0] != cleanL[0] {
				t.Fatalf("libEvery=%d failure@%d: r=%v l=%v, want %v, %v",
					libEvery, counter, r[0], l[0], cleanR[0], cleanL[0])
			}
			if rt.Stats.Rollbacks != 1 || rt.Stats.Failures != 1 {
				t.Fatalf("libEvery=%d failure@%d: stats %+v", libEvery, counter, rt.Stats)
			}
		}
	}
}

// A failure inside the library phase under a periodic protocol must replay
// library supersteps (contrast with the composite's forward recovery).
func TestPeriodicLibraryFailureReplays(t *testing.T) {
	// Counter 7 is library step 3 for pure periodic (4 general + library),
	// one superstep past the checkpoint taken after library step 1.
	inj := &Injector{Forced: map[int]int{7: 0}}
	rt, _, _ := runPeriodic(t, inj, 0)
	if rt.Stats.LibraryFails != 1 {
		t.Fatalf("expected library failure: %+v", rt.Stats)
	}
	if rt.Stats.ReplayedSteps == 0 {
		t.Fatalf("periodic protocol must replay lost library work: %+v", rt.Stats)
	}
	if rt.Stats.AbftRecoveries != 0 {
		t.Fatalf("periodic protocol must not use ABFT: %+v", rt.Stats)
	}
}

// BiPeriodic checkpoints less data than pure periodic on the same run: its
// library-phase checkpoints save only the library dataset.
func TestBiPeriodicSavesLessData(t *testing.T) {
	rtPure, _, _ := runPeriodic(t, nil, 0)
	rtBi, _, _ := runPeriodic(t, nil, 2)
	if rtBi.Stats.PartialCkpts == 0 {
		t.Fatalf("bi should take partial library checkpoints: %+v", rtBi.Stats)
	}
	// Same protection granularity (CkptEvery == LibraryCkptEvery == 2) but
	// cheaper checkpoints during the library phase.
	if rtBi.Stats.SavedValues >= rtPure.Stats.SavedValues {
		t.Fatalf("bi saved %d values, pure saved %d — incremental checkpointing should cost less",
			rtBi.Stats.SavedValues, rtPure.Stats.SavedValues)
	}
}

// The bi protocol's rollback combines the library-entry base (remainder)
// with the newest incremental checkpoint (library data).
func TestBiPeriodicSplitRestore(t *testing.T) {
	// Counter 7 = library step 3 (after the incremental ckpt at library
	// step 2): replay must be short.
	inj := &Injector{Forced: map[int]int{7: 1}}
	_, cleanR, cleanL := runPeriodic(t, nil, 2)
	rt, r, l := runPeriodic(t, inj, 2)
	if r[0] != cleanR[0] || l[0] != cleanL[0] {
		t.Fatalf("bi split restore diverged: r=%v l=%v", r[0], l[0])
	}
	if rt.Stats.ReplayedSteps > 2 {
		t.Fatalf("incremental checkpoint should bound replay: %+v", rt.Stats)
	}
}
