package vproc

import (
	"errors"
	"testing"

	"abftckpt/internal/ckpt"
)

func TestRestoreMissingSlot(t *testing.T) {
	rt := newTestRuntime(2, nil)
	if err := rt.Restore("nope", 0, []string{"x"}); !errors.Is(err, ckpt.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := rt.RestoreAll("nope", []string{"x"}); !errors.Is(err, ckpt.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRestoreSkipsAbsentDatasets(t *testing.T) {
	rt := newTestRuntime(1, nil)
	rt.Procs[0].Data["a"] = []float64{1}
	if err := rt.Checkpoint("s", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	// Requesting a dataset the snapshot does not contain leaves state alone.
	rt.Procs[0].Data["b"] = []float64{7}
	if err := rt.Restore("s", 0, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if rt.Procs[0].Data["b"][0] != 7 {
		t.Fatal("absent dataset was clobbered")
	}
}

func TestGatherMissingDataset(t *testing.T) {
	rt := newTestRuntime(3, nil)
	if got := rt.Gather("absent"); got != nil {
		t.Fatalf("gather of absent dataset = %v", got)
	}
}

func TestParallelPropagatesError(t *testing.T) {
	rt := newTestRuntime(2, nil)
	boom := errors.New("boom")
	err := rt.Parallel(func(p *Proc) error {
		if p.Rank == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// The composite general phase surfaces checkpoint-store failures instead of
// continuing on a broken base.
type failingStore struct {
	ckpt.Store
	fail bool
}

func (s *failingStore) Save(name string, data []byte) error {
	if s.fail {
		return errors.New("store down")
	}
	return s.Store.Save(name, data)
}

func TestCompositeSurfacesStoreFailure(t *testing.T) {
	store := &failingStore{Store: ckpt.NewMemStore()}
	rt := NewRuntime(2, store, nil)
	for _, p := range rt.Procs {
		p.Data["r"] = []float64{1}
		p.Data["l"] = []float64{1}
	}
	c := &Composite{RT: rt, CkptEvery: 1, RemainderDatasets: []string{"r"}, LibraryDatasets: []string{"l"}}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	store.fail = true
	err := c.RunGeneral(3, func(p *Proc, s int) error { return nil })
	if err == nil {
		t.Fatal("checkpoint failure swallowed")
	}
}
