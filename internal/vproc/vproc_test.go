package vproc

import (
	"errors"
	"testing"

	"abftckpt/internal/ckpt"
)

func newTestRuntime(n int, inj *Injector) *Runtime {
	return NewRuntime(n, ckpt.NewMemStore(), inj)
}

func TestParallelRunsAllProcs(t *testing.T) {
	rt := newTestRuntime(4, nil)
	err := rt.Parallel(func(p *Proc) error {
		p.Data["x"] = []float64{float64(p.Rank)}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rt.Gather("x")
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gather = %v", got)
		}
	}
}

func TestParallelFailsOnDeadProc(t *testing.T) {
	rt := newTestRuntime(3, nil)
	rt.Kill(1)
	err := rt.Parallel(func(p *Proc) error { return nil })
	if !errors.Is(err, ErrDeadProcess) {
		t.Fatalf("err = %v, want ErrDeadProcess", err)
	}
	rt.Respawn(1)
	if err := rt.Parallel(func(p *Proc) error { return nil }); err != nil {
		t.Fatalf("after respawn: %v", err)
	}
}

func TestKillDestroysState(t *testing.T) {
	rt := newTestRuntime(2, nil)
	rt.Procs[0].Data["d"] = []float64{1, 2, 3}
	rt.Kill(0)
	if rt.Procs[0].Alive() {
		t.Fatal("killed proc still alive")
	}
	if len(rt.Procs[0].Data) != 0 {
		t.Fatal("killed proc kept its data")
	}
	if rt.Stats.Failures != 1 {
		t.Fatalf("failures = %d", rt.Stats.Failures)
	}
}

func TestCheckpointRestore(t *testing.T) {
	rt := newTestRuntime(2, nil)
	for _, p := range rt.Procs {
		p.Data["a"] = []float64{float64(p.Rank) + 0.5}
		p.Data["b"] = []float64{10 * float64(p.Rank)}
	}
	if err := rt.Checkpoint("full", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	// Mutate then restore only "a".
	rt.Procs[1].Data["a"][0] = -1
	rt.Procs[1].Data["b"][0] = -1
	if err := rt.Restore("full", 1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if rt.Procs[1].Data["a"][0] != 1.5 {
		t.Fatalf("a not restored: %v", rt.Procs[1].Data["a"])
	}
	if rt.Procs[1].Data["b"][0] != -1 {
		t.Fatal("b restored although not requested")
	}
	// RestoreAll recovers everything.
	if err := rt.RestoreAll("full", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if rt.Procs[1].Data["b"][0] != 10 {
		t.Fatalf("b not restored: %v", rt.Procs[1].Data["b"])
	}
}

func TestCheckpointFailsWithDeadProc(t *testing.T) {
	rt := newTestRuntime(2, nil)
	rt.Kill(0)
	if err := rt.Checkpoint("x", []string{"a"}); !errors.Is(err, ErrDeadProcess) {
		t.Fatalf("err = %v, want ErrDeadProcess", err)
	}
}

func TestInjectorForced(t *testing.T) {
	inj := &Injector{Forced: map[int]int{2: 1}}
	if inj.next(4) != -1 || inj.next(4) != -1 {
		t.Fatal("unexpected early failure")
	}
	if got := inj.next(4); got != 1 {
		t.Fatalf("forced failure = %d, want 1", got)
	}
	if inj.next(4) != -1 {
		t.Fatal("failure after forced window")
	}
}

func TestInjectorNilNeverFails(t *testing.T) {
	var inj *Injector
	for i := 0; i < 100; i++ {
		if inj.next(4) != -1 {
			t.Fatal("nil injector failed")
		}
	}
}

func TestInjectorRandomRate(t *testing.T) {
	inj := NewInjector(0.3, 42)
	fails := 0
	for i := 0; i < 10000; i++ {
		if inj.next(8) >= 0 {
			fails++
		}
	}
	if fails < 2700 || fails > 3300 {
		t.Fatalf("failure count = %d, want ~3000", fails)
	}
}

// A composite general phase with a forced failure rolls back to the last
// periodic checkpoint and replays; the result equals the failure-free run.
func TestCompositeGeneralRollbackReplay(t *testing.T) {
	run := func(inj *Injector) ([]float64, RunStats) {
		rt := newTestRuntime(2, inj)
		for _, p := range rt.Procs {
			p.Data["r"] = []float64{float64(p.Rank + 1)}
			p.Data["l"] = []float64{0}
		}
		c := &Composite{RT: rt, CkptEvery: 2, RemainderDatasets: []string{"r"}, LibraryDatasets: []string{"l"}}
		if err := c.Init(); err != nil {
			t.Fatal(err)
		}
		step := func(p *Proc, s int) error {
			p.Data["r"][0] = p.Data["r"][0]*1.1 + float64(s)
			return nil
		}
		if err := c.RunGeneral(6, step); err != nil {
			t.Fatal(err)
		}
		return rt.Gather("r"), rt.Stats
	}

	clean, cleanStats := run(nil)
	// Fail at superstep counter 3 (after ckpt at step 2).
	failed, failedStats := run(&Injector{Forced: map[int]int{3: 0}})
	for i := range clean {
		if clean[i] != failed[i] {
			t.Fatalf("state diverged after rollback: %v vs %v", clean, failed)
		}
	}
	if cleanStats.Rollbacks != 0 || failedStats.Rollbacks != 1 {
		t.Fatalf("rollbacks: clean %d, failed %d", cleanStats.Rollbacks, failedStats.Rollbacks)
	}
	if failedStats.GeneralFails != 1 || failedStats.ReplayedSteps == 0 {
		t.Fatalf("stats: %+v", failedStats)
	}
}

// Without a periodic checkpoint the rollback target is the split base.
func TestCompositeRollbackToSplitBase(t *testing.T) {
	rt := newTestRuntime(2, &Injector{Forced: map[int]int{1: 1}})
	for _, p := range rt.Procs {
		p.Data["r"] = []float64{5}
		p.Data["l"] = []float64{7}
	}
	c := &Composite{RT: rt, CkptEvery: 0, RemainderDatasets: []string{"r"}, LibraryDatasets: []string{"l"}}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	step := func(p *Proc, s int) error {
		p.Data["r"][0]++
		return nil
	}
	if err := c.RunGeneral(3, step); err != nil {
		t.Fatal(err)
	}
	// 3 steps completed despite the failure: +3 from the base value 5.
	for _, p := range rt.Procs {
		if p.Data["r"][0] != 8 {
			t.Fatalf("rank %d: r = %v, want 8", p.Rank, p.Data["r"][0])
		}
		if p.Data["l"][0] != 7 {
			t.Fatalf("rank %d: library data corrupted: %v", p.Rank, p.Data["l"][0])
		}
	}
}

// trivialLib counts steps and recovers by recomputing from survivors.
type trivialLib struct {
	steps     int
	recovered *int
}

func (l trivialLib) Steps() int { return l.steps }
func (l trivialLib) Step(rt *Runtime, s int) error {
	return rt.Parallel(func(p *Proc) error {
		p.Data["l"][0] += 1
		return nil
	})
}
func (l trivialLib) Recover(rt *Runtime, failed int) error {
	*l.recovered++
	// Rebuild from a surviving peer (all ranks hold identical values here).
	var donor *Proc
	for _, p := range rt.Procs {
		if p.Rank != failed && p.Alive() {
			donor = p
			break
		}
	}
	rt.Procs[failed].Data["l"] = append([]float64(nil), donor.Data["l"]...)
	return nil
}

// A failure inside the library phase must trigger ABFT recovery, not a
// rollback, and completed library supersteps are never redone.
func TestCompositeLibraryForwardRecovery(t *testing.T) {
	rt := newTestRuntime(3, &Injector{Forced: map[int]int{2: 1}})
	for _, p := range rt.Procs {
		p.Data["r"] = []float64{float64(p.Rank)}
		p.Data["l"] = []float64{0}
	}
	c := &Composite{RT: rt, RemainderDatasets: []string{"r"}, LibraryDatasets: []string{"l"}}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	if err := c.RT.Checkpoint(SlotEntry, c.RemainderDatasets); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	lib := trivialLib{steps: 4, recovered: &recovered}
	if err := c.RunLibrary(lib); err != nil {
		t.Fatal(err)
	}
	if recovered != 1 || rt.Stats.AbftRecoveries != 1 || rt.Stats.Rollbacks != 0 {
		t.Fatalf("stats: recovered=%d %+v", recovered, rt.Stats)
	}
	// All 4 steps applied exactly once on every rank.
	for _, p := range rt.Procs {
		if p.Data["l"][0] != 4 {
			t.Fatalf("rank %d: l = %v, want 4", p.Rank, p.Data["l"][0])
		}
	}
	// The victim's remainder was reloaded from the entry checkpoint.
	if rt.Procs[1].Data["r"][0] != 1 {
		t.Fatalf("victim remainder = %v, want 1", rt.Procs[1].Data["r"][0])
	}
}

// RunEpoch chains the phases and leaves a complete split checkpoint behind.
func TestCompositeRunEpoch(t *testing.T) {
	rt := newTestRuntime(2, nil)
	for _, p := range rt.Procs {
		p.Data["r"] = []float64{1}
		p.Data["l"] = []float64{0}
	}
	c := &Composite{RT: rt, CkptEvery: 2, RemainderDatasets: []string{"r"}, LibraryDatasets: []string{"l"}}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	step := func(p *Proc, s int) error { p.Data["r"][0]++; return nil }
	if err := c.RunEpoch(3, step, trivialLib{steps: 2, recovered: &recovered}); err != nil {
		t.Fatal(err)
	}
	if rt.Stats.PartialCkpts != 2+2 { // Init + epoch entry/exit
		t.Fatalf("partial ckpts = %d, want 4", rt.Stats.PartialCkpts)
	}
	// The split base now captures the post-epoch state: restoring from it
	// reproduces the current values.
	wantR := rt.Gather("r")
	wantL := rt.Gather("l")
	rt.Procs[0].Data["r"][0] = -99
	rt.Procs[0].Data["l"][0] = -99
	if err := rt.RestoreAll(SlotEntry, []string{"r"}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RestoreAll(SlotExit, []string{"l"}); err != nil {
		t.Fatal(err)
	}
	gotR, gotL := rt.Gather("r"), rt.Gather("l")
	for i := range wantR {
		if gotR[i] != wantR[i] || gotL[i] != wantL[i] {
			t.Fatal("split checkpoint does not capture epoch end state")
		}
	}
}

func TestRuntimePanicsOnZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRuntime(0, ckpt.NewMemStore(), nil)
}
