package vproc

import "fmt"

// Checkpoint slot names used by the composite protocol.
const (
	SlotPeriodic = "periodic"    // full periodic checkpoint (GENERAL phase)
	SlotEntry    = "entry"       // forced partial checkpoint of the REMAINDER dataset
	SlotExit     = "library-out" // forced partial checkpoint of the LIBRARY dataset
)

// GeneralStep advances one process by one GENERAL-phase superstep. It must
// be deterministic in (process state, step index) so rollback replay is
// exact.
type GeneralStep func(p *Proc, step int) error

// Library is an ABFT-protectable library call: a fixed number of supersteps
// over a dataset that Recover can rebuild from surviving redundancy after a
// process failure.
type Library interface {
	// Steps returns the number of library supersteps.
	Steps() int
	// Step executes superstep s on the (consistent) current state.
	Step(rt *Runtime, s int) error
	// Recover rebuilds the failed rank's share of the LIBRARY dataset from
	// the survivors' data and checksums (forward recovery: no rollback).
	Recover(rt *Runtime, failedRank int) error
}

// Composite executes epochs under the ABFT&PeriodicCkpt protocol of
// Section III: periodic coordinated checkpoints and rollback/replay while in
// GENERAL phases; a forced partial checkpoint of the REMAINDER dataset at
// library entry; ABFT forward recovery (plus REMAINDER reload from the entry
// checkpoint) inside LIBRARY phases; and a forced partial checkpoint of the
// LIBRARY dataset at exit. Entry and exit checkpoints together form the
// split, but complete, coordinated checkpoint the next GENERAL phase rolls
// back to.
type Composite struct {
	RT *Runtime
	// CkptEvery takes a full periodic checkpoint every CkptEvery GENERAL
	// supersteps (the discretized optimal period). Zero disables periodic
	// checkpoints within phases (short-phase regime).
	CkptEvery int
	// RemainderDatasets are the dataset names outside the library call.
	RemainderDatasets []string
	// LibraryDatasets are the dataset names covered by ABFT.
	LibraryDatasets []string

	// periodicValid records that SlotPeriodic holds a checkpoint newer than
	// the split base.
	periodicValid bool
}

// allDatasets returns remainder+library names.
func (c *Composite) allDatasets() []string {
	out := append([]string(nil), c.RemainderDatasets...)
	return append(out, c.LibraryDatasets...)
}

// Init captures the initial split checkpoint (remainder to the entry slot,
// library data to the exit slot) so the first epoch has a rollback base.
func (c *Composite) Init() error {
	if err := c.RT.Checkpoint(SlotEntry, c.RemainderDatasets); err != nil {
		return err
	}
	if err := c.RT.Checkpoint(SlotExit, c.LibraryDatasets); err != nil {
		return err
	}
	c.RT.Stats.PartialCkpts += 2
	return nil
}

// restoreBase rolls every process back to the most recent consistent state:
// the last periodic checkpoint if one was taken since the split base,
// otherwise the split checkpoint (entry remainder + exit library).
func (c *Composite) restoreBase() error {
	if c.periodicValid {
		return c.RT.RestoreAll(SlotPeriodic, c.allDatasets())
	}
	if err := c.RT.RestoreAll(SlotEntry, c.RemainderDatasets); err != nil {
		return err
	}
	return c.RT.RestoreAll(SlotExit, c.LibraryDatasets)
}

// RunGeneral executes `steps` GENERAL supersteps under periodic
// checkpoint/rollback protection. On failure, every process is rolled back
// to the last checkpoint and the lost supersteps are re-executed.
func (c *Composite) RunGeneral(steps int, fn GeneralStep) error {
	rt := c.RT
	lastCkpt := 0 // first step not covered by the newest checkpoint
	step := 0
	for step < steps {
		if victim := rt.Injector.next(rt.N()); victim >= 0 {
			// Failure: downtime (respawn) + coordinated rollback.
			rt.Stats.GeneralFails++
			rt.Kill(victim)
			rt.Respawn(victim)
			if err := c.restoreBase(); err != nil {
				return fmt.Errorf("vproc: rollback: %w", err)
			}
			rt.Stats.Rollbacks++
			rt.Stats.ReplayedSteps += step - lastCkpt
			step = lastCkpt
			continue
		}
		s := step
		if err := rt.Parallel(func(p *Proc) error { return fn(p, s) }); err != nil {
			return err
		}
		rt.Stats.Supersteps++
		step++
		if c.CkptEvery > 0 && step < steps && (step-lastCkpt) >= c.CkptEvery {
			if err := rt.Checkpoint(SlotPeriodic, c.allDatasets()); err != nil {
				return err
			}
			rt.Stats.FullCkpts++
			c.periodicValid = true
			lastCkpt = step
		}
	}
	return nil
}

// RunLibrary executes the library call under ABFT protection: periodic
// checkpointing is disabled; a failure triggers respawn, reload of the
// REMAINDER dataset from the entry checkpoint, and checksum reconstruction
// of the LIBRARY dataset — after which the interrupted superstep is redone
// on the consistent state. No completed library superstep is ever lost.
func (c *Composite) RunLibrary(lib Library) error {
	rt := c.RT
	step := 0
	for step < lib.Steps() {
		if victim := rt.Injector.next(rt.N()); victim >= 0 {
			rt.Stats.LibraryFails++
			rt.Kill(victim)
			rt.Respawn(victim)
			if err := rt.Restore(SlotEntry, victim, c.RemainderDatasets); err != nil {
				return fmt.Errorf("vproc: remainder reload: %w", err)
			}
			if err := lib.Recover(rt, victim); err != nil {
				return fmt.Errorf("vproc: ABFT recovery: %w", err)
			}
			rt.Stats.AbftRecoveries++
			continue // redo the interrupted superstep
		}
		if err := lib.Step(rt, step); err != nil {
			return err
		}
		rt.Stats.Supersteps++
		step++
	}
	return nil
}

// RunEpoch executes one full epoch: the GENERAL phase, the forced entry
// checkpoint, the ABFT-protected LIBRARY phase, and the forced exit
// checkpoint. Init (or a previous epoch) must have established the split
// base.
func (c *Composite) RunEpoch(generalSteps int, fn GeneralStep, lib Library) error {
	if err := c.RunGeneral(generalSteps, fn); err != nil {
		return err
	}
	// Forced partial checkpoint of the REMAINDER dataset (library entry).
	if err := c.RT.Checkpoint(SlotEntry, c.RemainderDatasets); err != nil {
		return err
	}
	c.RT.Stats.PartialCkpts++
	if err := c.RunLibrary(lib); err != nil {
		return err
	}
	// Forced partial checkpoint of the LIBRARY dataset (library exit).
	if err := c.RT.Checkpoint(SlotExit, c.LibraryDatasets); err != nil {
		return err
	}
	c.RT.Stats.PartialCkpts++
	// The split base is now newer than any periodic checkpoint.
	c.periodicValid = false
	return nil
}
