package ckpt

import (
	"fmt"
	"hash/fnv"
	"math"
)

// IncrementalTracker implements dirty-chunk incremental checkpointing: the
// dataset is split into fixed chunks whose content hashes are remembered at
// every checkpoint, and the next checkpoint saves only the chunks that
// changed. This is the mechanism behind the reduced LIBRARY-phase checkpoint
// cost CL = rho*C of BiPeriodicCkpt: when a phase touches only a fraction of
// the memory, only that fraction is re-saved.
type IncrementalTracker struct {
	chunkLen int
	hashes   []uint64
}

// NewIncrementalTracker tracks a dataset of n float64 values in chunks of
// chunkLen values.
func NewIncrementalTracker(n, chunkLen int) *IncrementalTracker {
	if n <= 0 || chunkLen <= 0 {
		panic("ckpt: tracker sizes must be positive")
	}
	chunks := (n + chunkLen - 1) / chunkLen
	return &IncrementalTracker{chunkLen: chunkLen, hashes: make([]uint64, chunks)}
}

// Chunks returns the number of tracked chunks.
func (t *IncrementalTracker) Chunks() int { return len(t.hashes) }

func (t *IncrementalTracker) hashChunk(data []float64, idx int) uint64 {
	h := fnv.New64a()
	lo := idx * t.chunkLen
	hi := lo + t.chunkLen
	if hi > len(data) {
		hi = len(data)
	}
	var buf [8]byte
	for _, v := range data[lo:hi] {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			buf[b] = byte(bits >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Delta is the set of chunks that changed since the previous checkpoint.
type Delta struct {
	ChunkLen int
	Chunks   map[int][]float64
}

// DirtyChunks returns the indices of chunks whose content changed since the
// last Capture, without updating the tracker.
func (t *IncrementalTracker) DirtyChunks(data []float64) []int {
	var dirty []int
	for i := range t.hashes {
		if t.hashChunk(data, i) != t.hashes[i] {
			dirty = append(dirty, i)
		}
	}
	return dirty
}

// Capture returns the delta of changed chunks and updates the tracker state
// so the next Capture is relative to this one.
func (t *IncrementalTracker) Capture(data []float64) *Delta {
	d := &Delta{ChunkLen: t.chunkLen, Chunks: make(map[int][]float64)}
	for i := range t.hashes {
		h := t.hashChunk(data, i)
		if h == t.hashes[i] {
			continue
		}
		t.hashes[i] = h
		lo := i * t.chunkLen
		hi := lo + t.chunkLen
		if hi > len(data) {
			hi = len(data)
		}
		d.Chunks[i] = append([]float64(nil), data[lo:hi]...)
	}
	return d
}

// Apply writes the delta's chunks into data (the restore path: replay deltas
// over the last full snapshot in capture order).
func (d *Delta) Apply(data []float64) error {
	for idx, chunk := range d.Chunks {
		lo := idx * d.ChunkLen
		if lo < 0 || lo+len(chunk) > len(data) {
			return fmt.Errorf("ckpt: delta chunk %d outside dataset", idx)
		}
		copy(data[lo:lo+len(chunk)], chunk)
	}
	return nil
}

// Size returns the number of float64 values carried by the delta.
func (d *Delta) Size() int {
	var n int
	for _, c := range d.Chunks {
		n += len(c)
	}
	return n
}
