package ckpt

import (
	"errors"
	"testing"
	"testing/quick"

	"abftckpt/internal/rng"
)

func testStoreContract(t *testing.T, s Store) {
	t.Helper()
	if _, err := s.Load("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob: err = %v, want ErrNotFound", err)
	}
	if err := s.Save("a", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("b", []byte{4}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("a")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("load a: %v %v", got, err)
	}
	// Overwrite.
	if err := s.Save("a", []byte{9}); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Load("a")
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("overwrite failed: %v", got)
	}
	names, err := s.List()
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list = %v, %v", names, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete did not remove blob")
	}
	if err := s.Delete("a"); err != nil {
		t.Fatalf("double delete should be nil, got %v", err)
	}
}

func TestMemStoreContract(t *testing.T) { testStoreContract(t, NewMemStore()) }
func TestDiskStoreContract(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreContract(t, s)
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	data := []byte{1, 2}
	s.Save("x", data)
	data[0] = 99
	got, _ := s.Load("x")
	if got[0] != 1 {
		t.Fatal("store shares caller's buffer")
	}
	got[1] = 77
	again, _ := s.Load("x")
	if again[1] != 2 {
		t.Fatal("loaded buffer aliases store")
	}
}

func TestBuddyStoreFailover(t *testing.T) {
	primary, buddy := NewMemStore(), NewMemStore()
	bs := &BuddyStore{Primary: primary, Buddy: buddy}
	if err := bs.Save("ck", []byte{42}); err != nil {
		t.Fatal(err)
	}
	// Primary loses its copy (node failure): load falls back to buddy.
	primary.Delete("ck")
	got, err := bs.Load("ck")
	if err != nil || got[0] != 42 {
		t.Fatalf("buddy failover: %v %v", got, err)
	}
	testStoreContract(t, &BuddyStore{Primary: NewMemStore(), Buddy: NewMemStore()})
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewSnapshot(7, map[string][]float64{
		"remainder": {1.5, -2.25, 3},
		"library":   {0.125},
		"empty":     {},
	})
	back, err := DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 7 || len(back.Parts) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	for name, want := range s.Parts {
		got := back.Parts[name]
		if len(got) != len(want) {
			t.Fatalf("%s: %v vs %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	data := []float64{1, 2}
	s := NewSnapshot(1, map[string][]float64{"d": data})
	data[0] = 99
	if s.Parts["d"][0] != 1 {
		t.Fatal("snapshot aliases source data")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	s := NewSnapshot(1, map[string][]float64{"d": {1, 2, 3}})
	b := s.Encode()
	b[10] ^= 0xFF
	if _, err := DecodeSnapshot(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
	if _, err := DecodeSnapshot([]byte{1, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation not detected: %v", err)
	}
}

func TestSaveLoadViaStore(t *testing.T) {
	store := NewMemStore()
	s := NewSnapshot(3, map[string][]float64{"x": {9, 8}})
	if err := Save(store, "epoch-entry", s); err != nil {
		t.Fatal(err)
	}
	back, err := Load(store, "epoch-entry")
	if err != nil || back.Version != 3 || back.Parts["x"][1] != 8 {
		t.Fatalf("load: %+v, %v", back, err)
	}
	if _, err := Load(store, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("expected ErrNotFound")
	}
}

// Property: encode/decode round-trips random snapshots exactly.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%64) + 1
		data := make([]float64, n)
		for i := range data {
			data[i] = src.NormFloat64() * 1e6
		}
		s := NewSnapshot(seed, map[string][]float64{"d": data})
		back, err := DecodeSnapshot(s.Encode())
		if err != nil {
			return false
		}
		got := back.Parts["d"]
		if len(got) != n {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalTrackerDirtyDetection(t *testing.T) {
	data := make([]float64, 100)
	tr := NewIncrementalTracker(len(data), 10)
	if tr.Chunks() != 10 {
		t.Fatalf("chunks = %d", tr.Chunks())
	}
	// First capture: everything dirty (hashes start empty).
	d := tr.Capture(data)
	if len(d.Chunks) != 10 {
		t.Fatalf("initial capture chunks = %d", len(d.Chunks))
	}
	// No changes: nothing dirty.
	if d := tr.Capture(data); len(d.Chunks) != 0 {
		t.Fatalf("clean capture chunks = %d", len(d.Chunks))
	}
	// Touch chunk 3 and 7.
	data[35] = 1
	data[70] = 2
	dirty := tr.DirtyChunks(data)
	if len(dirty) != 2 || dirty[0] != 3 || dirty[1] != 7 {
		t.Fatalf("dirty = %v", dirty)
	}
	d = tr.Capture(data)
	if len(d.Chunks) != 2 || d.Size() != 20 {
		t.Fatalf("delta = %d chunks, %d values", len(d.Chunks), d.Size())
	}
}

func TestIncrementalRestore(t *testing.T) {
	src := rng.New(5)
	data := make([]float64, 95) // non-multiple of chunk size
	for i := range data {
		data[i] = src.Float64()
	}
	tr := NewIncrementalTracker(len(data), 10)
	base := append([]float64(nil), data...)
	tr.Capture(data)

	// Two rounds of modifications, each captured as a delta.
	var deltas []*Delta
	for round := 0; round < 2; round++ {
		for k := 0; k < 7; k++ {
			data[src.Intn(len(data))] = src.Float64()
		}
		deltas = append(deltas, tr.Capture(data))
	}

	// Restore: base + deltas in order equals the final state.
	restored := append([]float64(nil), base...)
	for _, d := range deltas {
		if err := d.Apply(restored); err != nil {
			t.Fatal(err)
		}
	}
	for i := range data {
		if restored[i] != data[i] {
			t.Fatalf("restore mismatch at %d: %v vs %v", i, restored[i], data[i])
		}
	}
}

func TestDeltaApplyBounds(t *testing.T) {
	d := &Delta{ChunkLen: 10, Chunks: map[int][]float64{5: make([]float64, 10)}}
	if err := d.Apply(make([]float64, 20)); err == nil {
		t.Fatal("out-of-range delta applied silently")
	}
}

func TestTrackerPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewIncrementalTracker(0, 1) },
		func() { NewIncrementalTracker(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// The incremental tracker captures ~rho of the data when the workload
// touches a fraction rho of the chunks — the CL = rho*C relation.
func TestIncrementalFractionMatchesRho(t *testing.T) {
	data := make([]float64, 1000)
	tr := NewIncrementalTracker(len(data), 10)
	tr.Capture(data)
	// Touch the first 80% of chunks.
	for i := 0; i < 800; i++ {
		data[i] += 1
	}
	d := tr.Capture(data)
	if d.Size() != 800 {
		t.Fatalf("delta size = %d, want 800 (rho=0.8)", d.Size())
	}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	data := make([]float64, 1<<16)
	s := NewSnapshot(1, map[string][]float64{"d": data})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Encode()
	}
}

func BenchmarkIncrementalCapture(b *testing.B) {
	data := make([]float64, 1<<16)
	tr := NewIncrementalTracker(len(data), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[i%len(data)] = float64(i)
		tr.Capture(data)
	}
}
