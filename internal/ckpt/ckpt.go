// Package ckpt implements the checkpoint/restart substrate of the composite
// protocol: coordinated snapshots of named datasets, partial checkpoints
// (REMAINDER vs LIBRARY datasets, Section III), incremental checkpoints with
// dirty-chunk tracking (the BiPeriodicCkpt optimization), and pluggable
// stores — in-memory, on-disk, and a buddy store that mirrors snapshots the
// way buddy-checkpointing schemes keep a copy on a partner node.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotFound is returned when a named checkpoint does not exist.
var ErrNotFound = errors.New("ckpt: checkpoint not found")

// ErrCorrupt is returned when a checkpoint fails its integrity check.
var ErrCorrupt = errors.New("ckpt: checkpoint corrupted")

// Store persists named checkpoint blobs.
type Store interface {
	// Save atomically replaces the blob under name.
	Save(name string, data []byte) error
	// Load returns the blob under name, or ErrNotFound.
	Load(name string) ([]byte, error)
	// Delete removes name (no error if absent).
	Delete(name string) error
	// List returns the stored names, sorted.
	List() ([]string, error)
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{blobs: make(map[string][]byte)} }

// Save stores a copy of data.
func (s *MemStore) Save(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[name] = append([]byte(nil), data...)
	return nil
}

// Load returns a copy of the stored blob.
func (s *MemStore) Load(name string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return append([]byte(nil), b...), nil
}

// Delete removes the blob.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, name)
	return nil
}

// List returns sorted names.
func (s *MemStore) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.blobs))
	for n := range s.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// DiskStore persists blobs as files in a directory, with atomic rename.
type DiskStore struct {
	Dir string
}

// NewDiskStore creates (if needed) and wraps a directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating store dir: %w", err)
	}
	return &DiskStore{Dir: dir}, nil
}

func (s *DiskStore) path(name string) string {
	return filepath.Join(s.Dir, name+".ckpt")
}

// Save writes to a temp file then renames, so readers never see torn writes.
func (s *DiskStore) Save(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.Dir, name+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(name))
}

// Load reads the blob from disk.
func (s *DiskStore) Load(name string) ([]byte, error) {
	b, err := os.ReadFile(s.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return b, err
}

// Delete removes the file.
func (s *DiskStore) Delete(name string) error {
	err := os.Remove(s.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List returns sorted checkpoint names found in the directory.
func (s *DiskStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); filepath.Ext(n) == ".ckpt" {
			names = append(names, n[:len(n)-len(".ckpt")])
		}
	}
	sort.Strings(names)
	return names, nil
}

// BuddyStore mirrors every save to a primary and a buddy store; loads fall
// back to the buddy when the primary lost the blob — modeling
// buddy-checkpointing, where a node's checkpoint survives its own failure in
// a partner's memory.
type BuddyStore struct {
	Primary, Buddy Store
}

// Save writes to both replicas; it fails only if both fail.
func (s *BuddyStore) Save(name string, data []byte) error {
	err1 := s.Primary.Save(name, data)
	err2 := s.Buddy.Save(name, data)
	if err1 != nil && err2 != nil {
		return fmt.Errorf("ckpt: both replicas failed: %v; %v", err1, err2)
	}
	return nil
}

// Load tries the primary then the buddy.
func (s *BuddyStore) Load(name string) ([]byte, error) {
	b, err := s.Primary.Load(name)
	if err == nil {
		return b, nil
	}
	return s.Buddy.Load(name)
}

// Delete removes the blob from both replicas.
func (s *BuddyStore) Delete(name string) error {
	err1 := s.Primary.Delete(name)
	err2 := s.Buddy.Delete(name)
	if err1 != nil {
		return err1
	}
	return err2
}

// List returns the primary's listing (falling back to the buddy on error).
func (s *BuddyStore) List() ([]string, error) {
	names, err := s.Primary.List()
	if err != nil {
		return s.Buddy.List()
	}
	return names, nil
}

// Snapshot is a coordinated checkpoint of named float64 datasets — the unit
// the composite protocol saves and restores. Partial checkpoints are
// snapshots containing a subset of the application's datasets (e.g. only the
// REMAINDER dataset at library entry).
type Snapshot struct {
	// Version orders snapshots of the same application.
	Version uint64
	// Parts maps dataset name to its values.
	Parts map[string][]float64
}

// NewSnapshot copies the given datasets into a snapshot.
func NewSnapshot(version uint64, parts map[string][]float64) *Snapshot {
	s := &Snapshot{Version: version, Parts: make(map[string][]float64, len(parts))}
	for name, data := range parts {
		s.Parts[name] = append([]float64(nil), data...)
	}
	return s
}

const snapshotMagic = uint32(0xABF7C4B7)

// Encode serializes the snapshot with a CRC32 integrity footer.
func (s *Snapshot) Encode() []byte {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	w(snapshotMagic)
	w(s.Version)
	names := make([]string, 0, len(s.Parts))
	for n := range s.Parts {
		names = append(names, n)
	}
	sort.Strings(names)
	w(uint32(len(names)))
	for _, n := range names {
		w(uint32(len(n)))
		buf.WriteString(n)
		data := s.Parts[n]
		w(uint64(len(data)))
		w(data)
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	w(crc)
	return buf.Bytes()
}

// DecodeSnapshot parses an encoded snapshot, verifying its integrity.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	body, footer := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(footer) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r := bytes.NewReader(body)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint32
	if err := rd(&magic); err != nil || magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	s := &Snapshot{Parts: make(map[string][]float64)}
	if err := rd(&s.Version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var count uint32
	if err := rd(&count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := rd(&nameLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		name := make([]byte, nameLen)
		if _, err := r.Read(name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		var dataLen uint64
		if err := rd(&dataLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if dataLen > uint64(r.Len()/8)+1 {
			return nil, fmt.Errorf("%w: implausible length", ErrCorrupt)
		}
		data := make([]float64, dataLen)
		if err := rd(data); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		s.Parts[string(name)] = data
	}
	return s, nil
}

// Save encodes and stores a snapshot under name.
func Save(store Store, name string, s *Snapshot) error {
	return store.Save(name, s.Encode())
}

// Load retrieves and decodes the snapshot stored under name.
func Load(store Store, name string) (*Snapshot, error) {
	b, err := store.Load(name)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(b)
}
