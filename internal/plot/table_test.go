package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "periods", Columns: []string{"mu", "eq11", "young"}}
	t.AddRow("3600", "1878", "2078")
	t.AddRow("86400", "10176", "10182")
	return t
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[1] != "mu,eq11,young" {
		t.Errorf("header = %q", lines[1])
	}
	if lines[2] != "3600,1878,2078" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestTableCSVEscapesCommas(t *testing.T) {
	tab := &Table{Title: "x", Columns: []string{"a"}}
	tab.AddRow("1,5")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Split(buf.String(), "\n")[2], "1,5") {
		t.Error("comma not escaped")
	}
}

func TestTableRenderAligned(t *testing.T) {
	out := sampleTable().Render()
	if !strings.Contains(out, "periods") {
		t.Error("title missing")
	}
	lines := strings.Split(out, "\n")
	// All data rows align: the second column starts at the same offset.
	idx := strings.Index(lines[1], "eq11")
	if idx < 0 {
		t.Fatal("header column missing")
	}
	if lines[3][idx:idx+4] != "1878" {
		t.Errorf("misaligned row: %q", lines[3])
	}
}

func TestTableAddRowPads(t *testing.T) {
	tab := &Table{Title: "x", Columns: []string{"a", "b", "c"}}
	tab.AddRow("only")
	if len(tab.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tab.Rows[0])
	}
	tab.AddRow("1", "2", "3", "4") // extra cell dropped
	if len(tab.Rows[1]) != 3 {
		t.Fatalf("row not truncated: %v", tab.Rows[1])
	}
}
