// Package plot exports experiment results as CSV tables, ASCII renderings
// (heatmaps and line charts for terminal inspection) and gnuplot scripts, so
// every figure of the paper can be regenerated without external
// dependencies.
package plot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"abftckpt/internal/sweep"
)

// Heatmap couples a result matrix with its axes and labels, matching the
// paper's Figure 7 layout: X is the system MTBF, Y the library-time ratio.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	Xs, Ys []float64
	Z      *sweep.Matrix // Rows = len(Ys), Cols = len(Xs)
}

// WriteCSV emits the heatmap as a matrix CSV: first row "ylabel\xlabel, x0,
// x1, ...", then one row per y value.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", h.Title)
	fmt.Fprintf(bw, "%s\\%s", h.YLabel, h.XLabel)
	for _, x := range h.Xs {
		fmt.Fprintf(bw, ",%g", x)
	}
	fmt.Fprintln(bw)
	for i, y := range h.Ys {
		fmt.Fprintf(bw, "%g", y)
		for j := range h.Xs {
			fmt.Fprintf(bw, ",%.6g", h.Z.At(i, j))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// asciiRamp maps [0,1] to increasing ink density.
const asciiRamp = " .:-=+*#%@"

// RenderASCII draws the heatmap with one character per cell, low Y at the
// bottom (as in the paper's figures). lo and hi fix the color scale; pass
// equal values to auto-scale.
func (h *Heatmap) RenderASCII(lo, hi float64) string {
	if lo == hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range h.Z.Data {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if math.IsInf(lo, 1) { // all NaN
			lo, hi = 0, 1
		}
		if lo == hi {
			hi = lo + 1
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  [%c=%.2g .. %c=%.2g]\n", h.Title, asciiRamp[0], lo, asciiRamp[len(asciiRamp)-1], hi)
	for i := len(h.Ys) - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "%6.2f |", h.Ys[i])
		for j := range h.Xs {
			sb.WriteByte(rampChar(h.Z.At(i, j), lo, hi))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "       +%s\n", strings.Repeat("-", len(h.Xs)))
	fmt.Fprintf(&sb, "        %s: %g .. %g\n", h.XLabel, h.Xs[0], h.Xs[len(h.Xs)-1])
	return sb.String()
}

func rampChar(v, lo, hi float64) byte {
	if math.IsNaN(v) {
		return '?'
	}
	t := (v - lo) / (hi - lo)
	if math.IsNaN(t) || t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	idx := int(t * float64(len(asciiRamp)-1))
	return asciiRamp[idx]
}

// GnuplotScript returns a gnuplot script rendering the heatmap from its CSV
// file (pm3d map, as used for the paper's Figure 7).
func (h *Heatmap) GnuplotScript(csvPath, outPath string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "set title %q\n", h.Title)
	fmt.Fprintf(&sb, "set xlabel %q\nset ylabel %q\n", h.XLabel, h.YLabel)
	sb.WriteString("set datafile separator ','\nset view map\nset pm3d interpolate 0,0\n")
	fmt.Fprintf(&sb, "set terminal pngcairo size 800,600\nset output %q\n", outPath)
	fmt.Fprintf(&sb, "splot %q matrix nonuniform with pm3d notitle\n", csvPath)
	return sb.String()
}

// Series is one named line of a line chart.
type Series struct {
	Name   string
	Values []float64
}

// LineChart is a multi-series chart over a shared X axis, matching the
// paper's Figures 8-10 layout (waste and fault counts versus node count).
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
	// LogX annotates that X is logarithmic (node counts).
	LogX bool
}

// WriteCSV emits "x, series1, series2, ..." rows.
func (c *LineChart) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Title)
	fmt.Fprintf(bw, "%s", c.XLabel)
	for _, s := range c.Series {
		fmt.Fprintf(bw, ",%s", strings.ReplaceAll(s.Name, ",", ";"))
	}
	fmt.Fprintln(bw)
	for i, x := range c.Xs {
		fmt.Fprintf(bw, "%g", x)
		for _, s := range c.Series {
			if i < len(s.Values) {
				fmt.Fprintf(bw, ",%.6g", s.Values[i])
			} else {
				fmt.Fprint(bw, ",")
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// seriesMarkers distinguish lines in ASCII output.
const seriesMarkers = "o+x*@#%&"

// RenderASCII draws the chart in a width x height character canvas.
func (c *LineChart) RenderASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if lo == hi {
		hi = lo + 1
	}
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	xPos := func(i int) int {
		if len(c.Xs) == 1 {
			return 0
		}
		var t float64
		if c.LogX && c.Xs[0] > 0 {
			t = (math.Log(c.Xs[i]) - math.Log(c.Xs[0])) / (math.Log(c.Xs[len(c.Xs)-1]) - math.Log(c.Xs[0]))
		} else {
			t = (c.Xs[i] - c.Xs[0]) / (c.Xs[len(c.Xs)-1] - c.Xs[0])
		}
		col := int(t * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}
	for si, s := range c.Series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for i, v := range s.Values {
			if i >= len(c.Xs) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			row := int((v - lo) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			canvas[height-1-row][xPos(i)] = marker
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", c.Title)
	for i, line := range canvas {
		yVal := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%10.3g |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&sb, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%10s  %s: %g .. %g", "", c.XLabel, c.Xs[0], c.Xs[len(c.Xs)-1])
	if c.LogX {
		sb.WriteString(" (log)")
	}
	sb.WriteByte('\n')
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "%10s  %c = %s\n", "", seriesMarkers[si%len(seriesMarkers)], s.Name)
	}
	return sb.String()
}

// GnuplotScript returns a gnuplot script for the chart's CSV file.
func (c *LineChart) GnuplotScript(csvPath, outPath string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "set title %q\n", c.Title)
	fmt.Fprintf(&sb, "set xlabel %q\nset ylabel %q\n", c.XLabel, c.YLabel)
	sb.WriteString("set datafile separator ','\nset key outside\n")
	if c.LogX {
		sb.WriteString("set logscale x\n")
	}
	fmt.Fprintf(&sb, "set terminal pngcairo size 800,600\nset output %q\n", outPath)
	sb.WriteString("plot ")
	for i, s := range c.Series {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%q using 1:%d with linespoints title %q", csvPath, i+2, s.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}
