package plot

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is a simple labeled table for experiment summaries (optimal-period
// comparisons, ablation results, parity checks).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// WriteCSV emits the table with a comment header.
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", t.Title)
	fmt.Fprintln(bw, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, ",", ";")
		}
		fmt.Fprintln(bw, strings.Join(escaped, ","))
	}
	return bw.Flush()
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
