package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"abftckpt/internal/sweep"
)

func sampleHeatmap() *Heatmap {
	z := sweep.NewMatrix(2, 3)
	z.Set(0, 0, 0)
	z.Set(0, 1, 0.5)
	z.Set(0, 2, 1)
	z.Set(1, 0, 0.25)
	z.Set(1, 1, 0.75)
	z.Set(1, 2, 1)
	return &Heatmap{
		Title: "test", XLabel: "mtbf", YLabel: "alpha",
		Xs: []float64{60, 120, 240}, Ys: []float64{0, 1}, Z: z,
	}
}

func TestHeatmapCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleHeatmap().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[1] != "alpha\\mtbf,60,120,240" {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0,0,0.5,1") {
		t.Errorf("row 0 = %q", lines[2])
	}
}

func TestHeatmapASCII(t *testing.T) {
	s := sampleHeatmap().RenderASCII(0, 1)
	if !strings.Contains(s, "test") {
		t.Error("title missing")
	}
	// Low Y renders at the bottom: row for y=1 comes first.
	lines := strings.Split(s, "\n")
	if !strings.HasPrefix(strings.TrimSpace(lines[1]), "1.00") {
		t.Errorf("top row should be y=1: %q", lines[1])
	}
	// Value 0 maps to ' ' and 1 maps to '@'.
	if !strings.Contains(s, "@") {
		t.Error("max value should render as @")
	}
}

func TestHeatmapASCIIAutoScaleAndNaN(t *testing.T) {
	h := sampleHeatmap()
	h.Z.Set(0, 0, math.NaN())
	s := h.RenderASCII(0, 0)
	if !strings.Contains(s, "?") {
		t.Error("NaN should render as ?")
	}
	// Constant matrix should not divide by zero.
	z := sweep.NewMatrix(1, 1)
	flat := &Heatmap{Title: "flat", Xs: []float64{1}, Ys: []float64{1}, Z: z}
	if out := flat.RenderASCII(0, 0); out == "" {
		t.Error("flat heatmap render empty")
	}
}

func TestHeatmapGnuplot(t *testing.T) {
	s := sampleHeatmap().GnuplotScript("a.csv", "a.png")
	for _, want := range []string{"pm3d", "a.csv", "a.png", "set xlabel \"mtbf\""} {
		if !strings.Contains(s, want) {
			t.Errorf("gnuplot script missing %q", want)
		}
	}
}

func sampleChart() *LineChart {
	return &LineChart{
		Title: "waste", XLabel: "nodes", YLabel: "waste", LogX: true,
		Xs: []float64{1000, 10000, 100000, 1000000},
		Series: []Series{
			{Name: "PeriodicCkpt", Values: []float64{0.01, 0.04, 0.13, 0.45}},
			{Name: "ABFT PeriodicCkpt", Values: []float64{0.03, 0.03, 0.06, 0.21}},
		},
	}
}

func TestLineChartCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[1] != "nodes,PeriodicCkpt,ABFT PeriodicCkpt" {
		t.Errorf("header = %q", lines[1])
	}
	if len(lines) != 6 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[2], "1000,0.01,0.03") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestLineChartCSVCommaEscaping(t *testing.T) {
	c := sampleChart()
	c.Series[0].Name = "a,b"
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Split(buf.String(), "\n")[1], "a,b") {
		t.Error("comma in series name not escaped")
	}
}

func TestLineChartASCII(t *testing.T) {
	s := sampleChart().RenderASCII(40, 10)
	if !strings.Contains(s, "o = PeriodicCkpt") {
		t.Error("legend missing")
	}
	if !strings.Contains(s, "(log)") {
		t.Error("log annotation missing")
	}
	if !strings.Contains(s, "o") || !strings.Contains(s, "+") {
		t.Error("markers missing")
	}
}

func TestLineChartASCIIDegenerate(t *testing.T) {
	c := &LineChart{
		Title: "flat", XLabel: "x", Xs: []float64{1, 2},
		Series: []Series{{Name: "s", Values: []float64{5, 5}}},
	}
	if out := c.RenderASCII(1, 1); out == "" {
		t.Error("degenerate chart render empty")
	}
	nan := &LineChart{
		Title: "nan", XLabel: "x", Xs: []float64{1, 2},
		Series: []Series{{Name: "s", Values: []float64{math.NaN(), math.Inf(1)}}},
	}
	if out := nan.RenderASCII(20, 5); out == "" {
		t.Error("all-NaN chart render empty")
	}
}

func TestLineChartGnuplot(t *testing.T) {
	s := sampleChart().GnuplotScript("w.csv", "w.png")
	for _, want := range []string{"logscale x", "using 1:2", "using 1:3", "w.png"} {
		if !strings.Contains(s, want) {
			t.Errorf("gnuplot script missing %q", want)
		}
	}
}
