// Package sweep runs parameter sweeps (grids and 1-D scans) in parallel
// across a worker pool. Cells are independent; determinism is preserved by
// addressing each cell's random stream with its indices (rng.At) rather than
// by execution order.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major result grid: Rows x Cols float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("sweep: matrix dimensions must be positive")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the value at (row, col).
func (m *Matrix) At(row, col int) float64 {
	m.check(row, col)
	return m.Data[row*m.Cols+col]
}

// Set stores v at (row, col).
func (m *Matrix) Set(row, col int, v float64) {
	m.check(row, col)
	m.Data[row*m.Cols+col] = v
}

func (m *Matrix) check(row, col int) {
	if row < 0 || row >= m.Rows || col < 0 || col >= m.Cols {
		panic(fmt.Sprintf("sweep: index (%d,%d) out of %dx%d", row, col, m.Rows, m.Cols))
	}
}

// MinMax returns the smallest and largest values in the matrix.
func (m *Matrix) MinMax() (lo, hi float64) {
	lo, hi = m.Data[0], m.Data[0]
	for _, v := range m.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Sub returns the element-wise difference m - other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("sweep: dimension mismatch in Sub")
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - other.Data[i]
	}
	return out
}

// Grid is a rectangular parameter grid: Xs indexes columns, Ys rows.
type Grid struct {
	Xs, Ys []float64
}

// CellFunc computes the value of one grid cell. It receives both the integer
// indices (for stream addressing) and the parameter values.
type CellFunc func(row, col int, y, x float64) float64

// Run evaluates f over every cell of g using `workers` goroutines
// (runtime.NumCPU() when workers <= 0) and returns the len(Ys) x len(Xs)
// result matrix.
func Run(g Grid, workers int, f CellFunc) *Matrix {
	if len(g.Xs) == 0 || len(g.Ys) == 0 {
		panic("sweep: empty grid")
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	m := NewMatrix(len(g.Ys), len(g.Xs))
	type job struct{ row, col int }
	jobs := make(chan job, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				m.Set(j.row, j.col, f(j.row, j.col, g.Ys[j.row], g.Xs[j.col]))
			}
		}()
	}
	for row := range g.Ys {
		for col := range g.Xs {
			jobs <- job{row, col}
		}
	}
	close(jobs)
	wg.Wait()
	return m
}

// Scan evaluates f over a 1-D parameter list in parallel and returns the
// values in input order.
func Scan(xs []float64, workers int, f func(i int, x float64) float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]float64, len(xs))
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = f(i, xs[i])
			}
		}()
	}
	for i := range xs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		panic("sweep: Linspace needs n > 0")
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid FP drift at the endpoint
	return out
}
