package sweep

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 || m.At(0, 0) != 0 {
		t.Fatal("set/get broken")
	}
	lo, hi := m.MinMax()
	if lo != 0 || hi != 42 {
		t.Errorf("minmax = %v, %v", lo, hi)
	}
}

func TestMatrixBoundsPanic(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(0, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMatrixSub(t *testing.T) {
	a, b := NewMatrix(2, 2), NewMatrix(2, 2)
	a.Set(0, 0, 5)
	b.Set(0, 0, 3)
	d := a.Sub(b)
	if d.At(0, 0) != 2 {
		t.Errorf("sub = %v", d.At(0, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	a.Sub(NewMatrix(1, 1))
}

func TestRunComputesAllCells(t *testing.T) {
	g := Grid{Xs: []float64{1, 2, 3}, Ys: []float64{10, 20}}
	var calls atomic.Int64
	m := Run(g, 4, func(row, col int, y, x float64) float64 {
		calls.Add(1)
		return y + x
	})
	if calls.Load() != 6 {
		t.Fatalf("calls = %d, want 6", calls.Load())
	}
	if m.At(0, 0) != 11 || m.At(1, 2) != 23 {
		t.Errorf("values wrong: %v, %v", m.At(0, 0), m.At(1, 2))
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	g := Grid{Xs: Linspace(0, 1, 11), Ys: Linspace(0, 1, 7)}
	f := func(row, col int, y, x float64) float64 { return math.Sin(x*7+y*13) * float64(row*31+col) }
	a := Run(g, 1, f)
	b := Run(g, 8, f)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("cell %d differs across worker counts", i)
		}
	}
}

func TestScan(t *testing.T) {
	xs := []float64{1, 4, 9, 16}
	got := Scan(xs, 3, func(i int, x float64) float64 { return math.Sqrt(x) })
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scan[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Scan(nil, 2, func(int, float64) float64 { return 0 }) != nil {
		t.Error("empty scan should be nil")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1: %v", got)
	}
	if got := Linspace(60, 240, 19); got[18] != 240 {
		t.Errorf("endpoint drift: %v", got[18])
	}
}

func TestRunPanicsOnEmptyGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Grid{}, 1, func(int, int, float64, float64) float64 { return 0 })
}
