package figures

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"abftckpt/internal/scenario"
)

// silentGoldenConfig is a reduced silent-error grid so the simulation-backed
// goldens stay fast enough for every test run.
func silentGoldenConfig(recovery string) SilentHeatmapConfig {
	return SilentHeatmapConfig{
		Recovery:    recovery,
		MTBEMinutes: []float64{60, 120, 240},
		VerifyCosts: []float64{30, 120, 600},
		Reps:        10,
		Seed:        1,
	}
}

// silentMLModelArtifacts are the analytic silent-error and multi-level
// figures (full default grids; deterministic).
func silentMLModelArtifacts() map[string]csvArtifact {
	arts := map[string]csvArtifact{
		"silent_backward_model": SilentHeatmapModel(SilentHeatmapConfig{Recovery: "backward"}),
		"silent_forward_model":  SilentHeatmapModel(SilentHeatmapConfig{Recovery: "forward"}),
	}
	w, sched := MultiLevelScaling(DefaultMLSeries(), []float64{1_000, 10_000, 100_000, 1_000_000})
	arts["multilevel_waste"], arts["multilevel_schedule"] = w, sched
	return arts
}

// silentMLSimArtifacts exercise the simulator-backed silent-error and
// multi-level paths at reduced grids and repetitions.
func silentMLSimArtifacts() map[string]csvArtifact {
	arts := map[string]csvArtifact{
		"silent_backward_diff_small": SilentHeatmapDiff(silentGoldenConfig("backward")),
		"silent_forward_diff_small":  SilentHeatmapDiff(silentGoldenConfig("forward")),
	}
	spec := MultiLevelScalingSpec("multilevel_sim", DefaultMLSeries(),
		[]float64{10_000, 1_000_000}, scenario.OutputSim)
	seed := uint64(1)
	spec.Seed = &seed
	spec.Reps = 10
	simArts := runSpec(spec, 0)
	arts["multilevel_sim_waste_small"] = simArts[0].Chart
	arts["multilevel_sim_schedule_small"] = simArts[1].Table
	return arts
}

// TestGoldenSilentMLModelCSV pins the analytic silent-error and multi-level
// artifacts to byte-identical CSV output.
func TestGoldenSilentMLModelCSV(t *testing.T) {
	checkGolden(t, silentMLModelArtifacts())
}

// TestGoldenSilentMLSimCSV pins the simulator-backed silent-error and
// multi-level artifacts (reduced grids; still seeded and bit-reproducible).
func TestGoldenSilentMLSimCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	checkGolden(t, silentMLSimArtifacts())
}

// checkCampaignFile pins a committed campaign JSON file to its builder (run
// with -update after changing either) and checks it loads through the strict
// parser.
func checkCampaignFile(t *testing.T, path string, c *scenario.Campaign) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if *update {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(want, data) {
		t.Errorf("%s diverged from its builder (run with -update)", path)
	}
	if _, err := scenario.LoadFile(path); err != nil {
		t.Errorf("committed campaign does not load: %v", err)
	}
}

// TestSilentCampaignFile pins examples/campaigns/silent.json to
// SilentCampaign.
func TestSilentCampaignFile(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "campaigns", "silent.json")
	checkCampaignFile(t, path, SilentCampaign(100, 42, true))
}

// TestMultiLevelCampaignFile pins examples/campaigns/multilevel.json to
// MultiLevelCampaign.
func TestMultiLevelCampaignFile(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "campaigns", "multilevel.json")
	checkCampaignFile(t, path, MultiLevelCampaign(100, 42, true))
}
