package figures

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"abftckpt/internal/scenario"
)

// paperCampaignPath is the committed JSON rendition of PaperCampaign; it is
// what `ftcampaign -spec examples/campaigns/paper.json` runs.
var paperCampaignPath = filepath.Join("..", "..", "examples", "campaigns", "paper.json")

// TestPaperCampaignValidates checks the full evaluation campaign expands
// cleanly and names every artifact of the historical cmd/figures output.
func TestPaperCampaignValidates(t *testing.T) {
	c := PaperCampaign(100, 42, true)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range c.Scenarios {
		names[s.Name] = true
	}
	for _, want := range []string{
		"fig7a_pure_model", "fig7b_pure_diff", "fig7c_bi_model", "fig7d_bi_diff",
		"fig7e_abft_model", "fig7f_abft_diff", "fig8", "fig9", "fig10",
		"table_fig10_parity", "table_periods", "table_ablation_epochs",
		"table_ablation_safeguard", "table_weibull", "table_dist_sensitivity",
	} {
		if !names[want] {
			t.Errorf("campaign is missing scenario %q", want)
		}
	}
	// Model-only mode drops exactly the simulation-backed scenarios.
	modelOnly := PaperCampaign(100, 42, false)
	if err := modelOnly.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(c.Scenarios)-len(modelOnly.Scenarios), 5; got != want {
		t.Errorf("withSim adds %d scenarios, want %d", got, want)
	}
}

// TestPaperCampaignFile pins the committed paper.json to the PaperCampaign
// builder (run with -update after changing either).
func TestPaperCampaignFile(t *testing.T) {
	c := PaperCampaign(100, 42, true)
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if *update {
		if err := os.WriteFile(paperCampaignPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(paperCampaignPath)
	if err != nil {
		t.Fatalf("missing %s (run with -update): %v", paperCampaignPath, err)
	}
	if !bytes.Equal(want, data) {
		t.Errorf("%s diverged from figures.PaperCampaign (run with -update)", paperCampaignPath)
	}
	// The committed file must load through the strict JSON parser.
	if _, err := scenario.LoadFile(paperCampaignPath); err != nil {
		t.Errorf("committed campaign does not load: %v", err)
	}
}

// TestQuickstartCampaignLoads checks the hand-written quickstart example
// (the one CI runs) validates against the engine.
func TestQuickstartCampaignLoads(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "campaigns", "quickstart.json")
	c, err := scenario.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range c.Scenarios {
		total += scenario.CellCount(c, s)
	}
	if total == 0 {
		t.Error("quickstart campaign expands to zero cells")
	}
}
