package figures

import (
	"math"
	"strings"
	"testing"

	"abftckpt/internal/model"
)

func smallFig7Config(proto model.Protocol) Fig7Config {
	return Fig7Config{
		Protocol:    proto,
		MTBFMinutes: []float64{60, 120, 240},
		Alphas:      []float64{0, 0.5, 1},
		Reps:        30,
		Seed:        1,
	}
}

func TestFig7ModelShape(t *testing.T) {
	h := Fig7Model(smallFig7Config(model.PurePeriodicCkpt))
	if h.Z.Rows != 3 || h.Z.Cols != 3 {
		t.Fatalf("grid shape %dx%d", h.Z.Rows, h.Z.Cols)
	}
	// Pure periodic: waste decreases with MTBF, constant in alpha.
	for col := 1; col < 3; col++ {
		if !(h.Z.At(0, col) < h.Z.At(0, col-1)) {
			t.Errorf("waste not decreasing in MTBF at col %d", col)
		}
	}
	for row := 1; row < 3; row++ {
		if h.Z.At(row, 0) != h.Z.At(0, 0) {
			t.Errorf("pure waste should not depend on alpha")
		}
	}
}

func TestFig7CompositeAlphaGradient(t *testing.T) {
	h := Fig7Model(smallFig7Config(model.AbftPeriodicCkpt))
	// At fixed MTBF, more library time means less waste for the composite
	// (Figure 7e: waste decreases toward alpha=1).
	for col := 0; col < 3; col++ {
		if !(h.Z.At(2, col) < h.Z.At(0, col)) {
			t.Errorf("composite waste at alpha=1 (%v) should be below alpha=0 (%v)",
				h.Z.At(2, col), h.Z.At(0, col))
		}
	}
}

func TestFig7DiffSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := Fig7Diff(smallFig7Config(model.AbftPeriodicCkpt))
	lo, hi := h.Z.MinMax()
	// Model and simulation must correspond within the paper's bounds.
	if lo < -0.13 || hi > 0.13 {
		t.Errorf("diff out of bounds: [%v, %v]", lo, hi)
	}
	if !strings.Contains(h.Title, "Difference") {
		t.Error("diff title missing")
	}
}

func TestFig8Charts(t *testing.T) {
	nodes := []float64{1_000, 10_000, 100_000, 1_000_000}
	waste, faults := Fig8(nodes)
	if len(waste.Series) != 7 || len(faults.Series) != 7 {
		t.Fatalf("series count: %d waste, %d faults", len(waste.Series), len(faults.Series))
	}
	byName := map[string][]float64{}
	for _, s := range waste.Series {
		byName[s.Name] = s.Values
	}
	pure := byName["PurePeriodicCkpt"]
	comp := byName["ABFT&PeriodicCkpt"]
	if pure == nil || comp == nil {
		t.Fatalf("missing headline series: %v", byName)
	}
	// Published shape: composite is worse below ~100k (paper: "up to
	// approximately 100,000 nodes, the fault-free overhead of ABFT
	// negatively impacts the waste"), better at 1M; crossover in the
	// 10^5..10^6 decade.
	for i := 0; i < 3; i++ {
		if !(comp[i] > pure[i]) {
			t.Errorf("at %v nodes: composite %v should exceed pure %v", nodes[i], comp[i], pure[i])
		}
	}
	if !(comp[3] < pure[3]) {
		t.Errorf("at 1M: composite %v should be below pure %v", comp[3], pure[3])
	}
	// The amortized composite variant is never worse than the per-epoch one.
	amortized := byName["ABFT&PeriodicCkpt (amortized ckpts)"]
	for i := range amortized {
		if amortized[i] > comp[i]+1e-9 {
			t.Errorf("amortized %v worse than per-epoch %v at %v nodes", amortized[i], comp[i], nodes[i])
		}
	}
	// The paper-stated linear variant must exist and become infeasible
	// (waste=1) at 1M nodes.
	lin := byName["PurePeriodicCkpt (C~x)"]
	if lin == nil || lin[3] != 1 {
		t.Errorf("linear-C variant at 1M: %v, want 1 (infeasible)", lin)
	}
}

func TestFig9Charts(t *testing.T) {
	nodes := []float64{1_000, 10_000, 100_000, 1_000_000}
	waste, _ := Fig9(nodes)
	byName := map[string][]float64{}
	for _, s := range waste.Series {
		byName[s.Name] = s.Values
	}
	// Headline (paper-stated C~x): periodic checkpointing collapses at
	// scale; the composite is infeasible at 1M too (the remainder reload
	// alone exceeds the MTBF) but survives longer than pure.
	pure := byName["PurePeriodicCkpt"]
	comp := byName["ABFT&PeriodicCkpt"]
	if pure[3] != 1 {
		t.Errorf("pure at 1M with C~x: %v, want 1", pure[3])
	}
	if !(comp[2] < pure[2]) {
		t.Errorf("at 100k: composite %v should beat pure %v", comp[2], pure[2])
	}
}

func TestFig10Charts(t *testing.T) {
	nodes := []float64{10_000, 100_000, 1_000_000}
	waste, faults := Fig10(nodes)
	if len(waste.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(waste.Series))
	}
	byName := map[string][]float64{}
	for _, s := range waste.Series {
		byName[s.Name] = s.Values
	}
	// Constant checkpoint cost rescues the periodic protocols (finite
	// waste at 1M) but the composite still wins there.
	pure := byName["PurePeriodicCkpt"]
	comp := byName["ABFT&PeriodicCkpt"]
	if pure[2] >= 1 {
		t.Errorf("pure at 1M should be feasible, got %v", pure[2])
	}
	if !(comp[2] < pure[2]) {
		t.Errorf("composite %v should beat pure %v at 1M", comp[2], pure[2])
	}
	// Fault counts exist and grow with node count for the periodic series.
	for _, s := range faults.Series {
		if s.Name == "PurePeriodicCkpt" {
			if !(s.Values[2] > s.Values[0]) {
				t.Errorf("fault count should grow: %v", s.Values)
			}
		}
	}
}

func TestFig10ParityTable(t *testing.T) {
	tab := Fig10ParityTable()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	pure60 := parse(tab.Rows[0][1])
	comp := parse(tab.Rows[2][1])
	pure6 := parse(tab.Rows[3][1])
	if !(comp < pure60) {
		t.Errorf("composite %v should beat pure-60s %v", comp, pure60)
	}
	if math.Abs(pure6-comp) > 0.05 {
		t.Errorf("10x cheaper checkpoints should reach parity: pure6=%v comp=%v", pure6, comp)
	}
}

func TestPeriodTable(t *testing.T) {
	tab := PeriodTable()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.Render()
	if !strings.Contains(out, "eq11") {
		t.Error("render missing column")
	}
	// No infeasible rows for these comfortable parameters.
	for _, row := range tab.Rows {
		if row[2] == "infeasible" {
			t.Errorf("unexpected infeasible row: %v", row)
		}
	}
}

func TestAblationTables(t *testing.T) {
	nodes := []float64{10_000, 1_000_000}
	agg := AblationEpochAggregation(nodes)
	if len(agg.Rows) != 2 {
		t.Fatalf("aggregation rows = %d", len(agg.Rows))
	}
	sg := AblationSafeguard(nodes)
	if len(sg.Rows) != 2 {
		t.Fatalf("safeguard rows = %d", len(sg.Rows))
	}
	// Safeguard can only help (or tie): its waste is <= the no-safeguard one.
	for _, row := range sg.Rows {
		var off, on float64
		fmtSscan(row[1], &off)
		fmtSscan(row[2], &on)
		if on > off+1e-9 {
			t.Errorf("safeguard hurt: %v > %v at nodes=%s", on, off, row[0])
		}
	}
}

func TestWeibullSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tab := WeibullSensitivity([]float64{0.7, 1}, 30, 5)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmtSscan(cell, &v); err != nil || v < 0 || v > 1 {
				t.Errorf("implausible waste cell %q", cell)
			}
		}
	}
}

// fmtSscan is a tiny indirection so tests parse the formatted cells the way
// they were written.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

func TestDistributionSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cases := DefaultDistCases()
	tab := DistributionSensitivity(cases, 30, 5)
	if len(tab.Rows) != len(cases) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(cases))
	}
	if tab.Rows[0][0] != "exponential" {
		t.Fatalf("first row should be the exponential baseline, got %q", tab.Rows[0][0])
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmtSscan(cell, &v); err != nil || v <= 0 || v >= 1 {
				t.Errorf("%s: implausible waste cell %q", row[0], cell)
			}
		}
	}
}
