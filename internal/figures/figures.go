// Package figures regenerates every table and figure of the paper's
// evaluation section (Section V) from the analytical model and the
// simulator. It is shared by cmd/figures and by the benchmark harness in the
// repository root.
//
// Parameter choices that the paper leaves ambiguous (notably the
// checkpoint-cost scaling of Figures 8-10, whose stated form is infeasible
// at 10^6 nodes) are documented in DESIGN.md §5-S3 and EXPERIMENTS.md; both
// the paper-stated and the feasible variants are emitted.
package figures

import (
	"fmt"
	"math"

	"abftckpt/internal/dist"
	"abftckpt/internal/model"
	"abftckpt/internal/plot"
	"abftckpt/internal/rng"
	"abftckpt/internal/sim"
	"abftckpt/internal/sweep"
)

// Fig7Config parameterizes the Figure 7 heatmaps.
type Fig7Config struct {
	// Protocol selects the column of Figure 7 (a/b: Pure, c/d: Bi, e/f:
	// composite).
	Protocol model.Protocol
	// MTBFMinutes is the x axis (paper: 60 to 240 minutes).
	MTBFMinutes []float64
	// Alphas is the y axis (paper: 0 to 1).
	Alphas []float64
	// Reps is the number of simulator runs per cell for the difference
	// heatmap (paper: 1000).
	Reps int
	// Seed addresses the failure-trace streams.
	Seed uint64
	// Workers bounds sweep parallelism (0: NumCPU).
	Workers int
}

func (c Fig7Config) withDefaults() Fig7Config {
	if len(c.MTBFMinutes) == 0 {
		c.MTBFMinutes = sweep.Linspace(60, 240, 19)
	}
	if len(c.Alphas) == 0 {
		c.Alphas = sweep.Linspace(0, 1, 21)
	}
	if c.Reps <= 0 {
		c.Reps = 100
	}
	return c
}

// Fig7Model computes the model-predicted waste heatmap (Figures 7a/7c/7e).
func Fig7Model(cfg Fig7Config) *plot.Heatmap {
	cfg = cfg.withDefaults()
	grid := sweep.Grid{Xs: cfg.MTBFMinutes, Ys: cfg.Alphas}
	z := sweep.Run(grid, cfg.Workers, func(_, _ int, alpha, mtbfMin float64) float64 {
		p := model.Fig7Params(mtbfMin*model.Minute, alpha)
		return model.Evaluate(cfg.Protocol, p, model.Options{}).Waste
	})
	return &plot.Heatmap{
		Title:  fmt.Sprintf("Waste of %v: Model (T0=1w, C=R=10min, D=1min, rho=0.8, phi=1.03)", cfg.Protocol),
		XLabel: "MTBF system (minutes)",
		YLabel: "Ratio of time spent in Library Phase (alpha)",
		Xs:     cfg.MTBFMinutes,
		Ys:     cfg.Alphas,
		Z:      z,
	}
}

// Fig7Sim computes the simulator-measured waste heatmap.
func Fig7Sim(cfg Fig7Config) *plot.Heatmap {
	cfg = cfg.withDefaults()
	grid := sweep.Grid{Xs: cfg.MTBFMinutes, Ys: cfg.Alphas}
	z := sweep.Run(grid, cfg.Workers, func(row, col int, alpha, mtbfMin float64) float64 {
		p := model.Fig7Params(mtbfMin*model.Minute, alpha)
		agg := sim.Simulate(sim.Config{
			Params:   p,
			Protocol: cfg.Protocol,
			Reps:     cfg.Reps,
			Seed:     rng.At(cfg.Seed, uint64(cfg.Protocol), uint64(row), uint64(col)),
		})
		return agg.Waste.Mean
	})
	return &plot.Heatmap{
		Title:  fmt.Sprintf("Waste of %v: Simulation (%d runs/cell)", cfg.Protocol, cfg.Reps),
		XLabel: "MTBF system (minutes)",
		YLabel: "Ratio of time spent in Library Phase (alpha)",
		Xs:     cfg.MTBFMinutes,
		Ys:     cfg.Alphas,
		Z:      z,
	}
}

// Fig7Diff computes the difference heatmap WASTE_simul - WASTE_model
// (Figures 7b/7d/7f).
func Fig7Diff(cfg Fig7Config) *plot.Heatmap {
	cfg = cfg.withDefaults()
	m := Fig7Model(cfg)
	s := Fig7Sim(cfg)
	diff := s.Z.Sub(m.Z)
	return &plot.Heatmap{
		Title:  fmt.Sprintf("%v: Difference WASTE_simul - WASTE_model", cfg.Protocol),
		XLabel: m.XLabel,
		YLabel: m.YLabel,
		Xs:     cfg.MTBFMinutes,
		Ys:     cfg.Alphas,
		Z:      diff,
	}
}

// ScalingSeries names one protocol series of a weak-scaling chart.
type ScalingSeries struct {
	Name     string
	Scenario model.WeakScaling
	Protocol model.Protocol
}

// ScalingCharts evaluates the given series over the node counts and returns
// the waste chart and the expected-fault-count chart (the two stacked panels
// of Figures 8-10).
func ScalingCharts(title string, nodes []float64, series []ScalingSeries, opts model.Options) (waste, faults *plot.LineChart) {
	waste = &plot.LineChart{
		Title: title + " - waste", XLabel: "Nodes", YLabel: "Waste", Xs: nodes, LogX: true,
	}
	faults = &plot.LineChart{
		Title: title + " - expected faults", XLabel: "Nodes", YLabel: "# Faults", Xs: nodes, LogX: true,
	}
	for _, s := range series {
		pts := s.Scenario.Sweep(nodes, opts)
		w := make([]float64, len(pts))
		f := make([]float64, len(pts))
		for i, pt := range pts {
			res := pt.Results[s.Protocol]
			w[i] = res.Waste
			if math.IsInf(res.ExpectedFaults, 1) {
				f[i] = math.NaN() // infeasible: no finite fault count
			} else {
				f[i] = res.ExpectedFaults
			}
		}
		waste.Series = append(waste.Series, plot.Series{Name: s.Name, Values: w})
		faults.Series = append(faults.Series, plot.Series{Name: s.Name, Values: f})
	}
	return waste, faults
}

func protocolSeries(scenario model.WeakScaling, suffix string) []ScalingSeries {
	out := make([]ScalingSeries, 0, 3)
	for _, proto := range model.Protocols {
		out = append(out, ScalingSeries{Name: proto.String() + suffix, Scenario: scenario, Protocol: proto})
	}
	return out
}

// Fig8 returns the Figure 8 charts: weak scaling with alpha fixed at 0.8.
// The headline series uses constant (scalable-storage) checkpoint cost —
// the variant under which the published curve shapes stay feasible at 10^6
// nodes. The composite pays its forced phase-switch checkpoints in every
// epoch (the faithful Section III protocol), which reproduces the published
// crossover in the 10^5..10^6 decade; an amortized variant and the
// paper-stated linear checkpoint scaling are emitted alongside (the latter
// drives every protocol infeasible at extreme scale, see DESIGN.md §5-S3).
func Fig8(nodes []float64) (waste, faults *plot.LineChart) {
	amortized := model.Fig8Scenario(model.ScaleConstant)
	amortized.AggregateEpochs = true
	series := append(
		protocolSeries(model.Fig8Scenario(model.ScaleConstant), ""),
		ScalingSeries{
			Name:     model.AbftPeriodicCkpt.String() + " (amortized ckpts)",
			Scenario: amortized,
			Protocol: model.AbftPeriodicCkpt,
		},
	)
	series = append(series, protocolSeries(model.Fig8Scenario(model.ScaleLinear), " (C~x)")...)
	return ScalingCharts("Figure 8: weak scaling, alpha=0.8", nodes, series, model.Options{})
}

// Fig9 returns the Figure 9 charts: weak scaling with an O(n^2) GENERAL
// phase, so alpha grows from 0.55 at 1k nodes to 0.975 at 1M nodes. The
// headline series uses the paper-stated linear checkpoint scaling — showing
// memory-proportional checkpointing collapsing at scale — with the
// composite's forced checkpoints amortized over the run (per-epoch forced
// checkpoints of cost C ~ x on sub-minute epochs would smother every
// advantage; the per-epoch series is emitted as a variant). The
// constant-cost scenario is Figure 10.
func Fig9(nodes []float64) (waste, faults *plot.LineChart) {
	amortized := model.Fig9Scenario(model.ScaleLinear)
	amortized.AggregateEpochs = true
	series := protocolSeries(amortized, "")
	series = append(series, ScalingSeries{
		Name:     model.AbftPeriodicCkpt.String() + " (per-epoch ckpts)",
		Scenario: model.Fig9Scenario(model.ScaleLinear),
		Protocol: model.AbftPeriodicCkpt,
	})
	return ScalingCharts("Figure 9: weak scaling, variable alpha", nodes, series, model.Options{})
}

// Fig10 returns the Figure 10 charts: the Figure 9 scenario with checkpoint
// and recovery time independent of the node count (C = R = 60 s).
func Fig10(nodes []float64) (waste, faults *plot.LineChart) {
	return ScalingCharts("Figure 10: weak scaling, constant checkpoint time",
		nodes, protocolSeries(model.Fig10Scenario(), ""), model.Options{})
}

// Fig10ParityTable reproduces the paper's closing claim: at 10^6 nodes with
// C = R = 60 s the periodic protocols lose to the composite, and only a 10x
// cheaper checkpoint (C = R = 6 s) brings PurePeriodicCkpt to comparable
// performance.
func Fig10ParityTable() *plot.Table {
	t := &plot.Table{
		Title:   "Figure 10 parity check at 1M nodes (per-epoch model)",
		Columns: []string{"configuration", "waste", "expected faults/app"},
	}
	w := model.Fig10Scenario()
	add := func(name string, proto model.Protocol, scen model.WeakScaling) {
		res := scen.EvaluateProtocol(proto, 1_000_000, model.Options{})
		t.AddRow(name,
			fmt.Sprintf("%.4f", res.Waste),
			fmt.Sprintf("%.1f", res.ExpectedFaults))
	}
	add("PurePeriodicCkpt C=R=60s", model.PurePeriodicCkpt, w)
	add("BiPeriodicCkpt C=R=60s", model.BiPeriodicCkpt, w)
	add("ABFT&PeriodicCkpt C=R=60s", model.AbftPeriodicCkpt, w)
	cheap := w
	cheap.CkptAtBase = 6
	add("PurePeriodicCkpt C=R=6s (10x cheaper)", model.PurePeriodicCkpt, cheap)
	return t
}

// PeriodTable compares the checkpoint-period formulas (Eq. 11 vs Young 1974
// vs Daly 2004) and the waste each induces, over representative platforms.
func PeriodTable() *plot.Table {
	t := &plot.Table{
		Title: "Optimal checkpoint periods: Eq.(11) vs Young vs Daly (D=1min, R=C)",
		Columns: []string{"C", "MTBF", "P eq11 (s)", "P young (s)", "P daly (s)",
			"waste@eq11", "waste@young", "waste@daly"},
	}
	for _, c := range []float64{model.Minute, 10 * model.Minute} {
		for _, mu := range []float64{model.Hour, 6 * model.Hour, model.Day} {
			d, r := model.Minute, c
			eq11, ok := model.OptimalPeriod(c, mu, d, r)
			young := model.YoungPeriod(c, mu)
			daly := model.DalyPeriod(c, mu, d, r)
			if !ok {
				t.AddRow(fmtDur(c), fmtDur(mu), "infeasible", "", "", "", "", "")
				continue
			}
			w := func(p float64) string {
				return fmt.Sprintf("%.4f", 1-model.PeriodicFactor(p, c, mu, d, r))
			}
			t.AddRow(fmtDur(c), fmtDur(mu),
				fmt.Sprintf("%.0f", eq11), fmt.Sprintf("%.0f", young), fmt.Sprintf("%.0f", daly),
				w(eq11), w(young), w(daly))
		}
	}
	return t
}

func fmtDur(seconds float64) string {
	switch {
	case seconds >= model.Day:
		return fmt.Sprintf("%gd", seconds/model.Day)
	case seconds >= model.Hour:
		return fmt.Sprintf("%gh", seconds/model.Hour)
	case seconds >= model.Minute:
		return fmt.Sprintf("%gmin", seconds/model.Minute)
	default:
		return fmt.Sprintf("%gs", seconds)
	}
}

// AblationEpochAggregation contrasts per-epoch forced checkpoints (the
// faithful Section III protocol) with whole-application aggregation, for the
// Figure 8 scalable-storage scenario.
func AblationEpochAggregation(nodes []float64) *plot.Table {
	t := &plot.Table{
		Title:   "Ablation: composite waste, per-epoch forced checkpoints vs aggregated epochs (Fig. 8 scenario, C const)",
		Columns: []string{"nodes", "waste per-epoch", "waste aggregated"},
	}
	per := model.Fig8Scenario(model.ScaleConstant)
	agg := per
	agg.AggregateEpochs = true
	for _, n := range nodes {
		wp := model.Evaluate(model.AbftPeriodicCkpt, per.ParamsAt(n), model.Options{}).Waste
		wa := model.Evaluate(model.AbftPeriodicCkpt, agg.ParamsAt(n), model.Options{}).Waste
		t.AddRow(fmt.Sprintf("%.0f", n), fmt.Sprintf("%.4f", wp), fmt.Sprintf("%.4f", wa))
	}
	return t
}

// AblationSafeguard contrasts the composite with and without the Section
// III-B safeguard on the Figure 8 scenario.
func AblationSafeguard(nodes []float64) *plot.Table {
	t := &plot.Table{
		Title:   "Ablation: composite waste with and without the ABFT-activation safeguard (Fig. 8 scenario, C const)",
		Columns: []string{"nodes", "waste no safeguard", "waste safeguard", "ABFT active"},
	}
	w := model.Fig8Scenario(model.ScaleConstant)
	for _, n := range nodes {
		p := w.ParamsAt(n)
		off := model.Evaluate(model.AbftPeriodicCkpt, p, model.Options{})
		on := model.Evaluate(model.AbftPeriodicCkpt, p, model.Options{Safeguard: true})
		t.AddRow(fmt.Sprintf("%.0f", n),
			fmt.Sprintf("%.4f", off.Waste),
			fmt.Sprintf("%.4f", on.Waste),
			fmt.Sprintf("%v", on.ABFTActive))
	}
	return t
}

// DistCase names one failure-process scenario of a sensitivity scan. Make
// builds the inter-arrival distribution from the platform MTBF, so every
// case is compared at equal MTBF.
type DistCase struct {
	Name string
	Make func(mtbf float64) dist.Distribution
}

// DefaultDistCases returns the catalogue scanned by DistributionSensitivity:
// the exponential baseline plus Weibull, gamma and log-normal shapes spanning
// infant-mortality (k < 1), burn-in (k > 1) and heavy-tailed regimes.
func DefaultDistCases() []DistCase {
	mk := func(f func(shape, mtbf float64) dist.Distribution, shape float64) func(float64) dist.Distribution {
		return func(mtbf float64) dist.Distribution { return f(shape, mtbf) }
	}
	weibull := func(k, m float64) dist.Distribution { return dist.WeibullWithMTBF(k, m) }
	gamma := func(k, m float64) dist.Distribution { return dist.GammaWithMTBF(k, m) }
	lognormal := func(s, m float64) dist.Distribution { return dist.LogNormalWithMTBF(s, m) }
	return []DistCase{
		{"exponential", func(m float64) dist.Distribution { return dist.NewExponential(m) }},
		{"weibull k=0.5", mk(weibull, 0.5)},
		{"weibull k=0.7", mk(weibull, 0.7)},
		{"weibull k=2", mk(weibull, 2)},
		{"gamma k=0.5", mk(gamma, 0.5)},
		{"gamma k=3", mk(gamma, 3)},
		{"lognormal s=1", mk(lognormal, 1)},
		{"lognormal s=1.5", mk(lognormal, 1.5)},
	}
}

// DistributionSensitivity measures simulated waste for the three protocols
// under every failure process of cases, all normalized to the same platform
// MTBF (mu=2h on the Figure 7 slice) — the paper's Section V realism check
// widened from Weibull-only to the full distribution catalogue.
func DistributionSensitivity(cases []DistCase, reps int, seed uint64) *plot.Table {
	t := &plot.Table{
		Title:   "Sensitivity: simulated waste vs failure process at equal MTBF (mu=2h, alpha=0.8)",
		Columns: []string{"distribution", "pure waste", "bi waste", "composite waste"},
	}
	p := model.Fig7Params(2*model.Hour, 0.8)
	for i, c := range cases {
		row := []string{c.Name}
		for _, proto := range model.Protocols {
			cfg := sim.Config{
				Params: p, Protocol: proto, Reps: reps,
				Seed:         rng.At(seed, uint64(i), uint64(proto)),
				Distribution: c.Make,
			}
			row = append(row, fmt.Sprintf("%.4f", sim.Simulate(cfg).Waste.Mean))
		}
		t.AddRow(row...)
	}
	return t
}

// WeibullSensitivity measures simulated composite waste under Weibull
// failures of equal MTBF but varying shape (k=1 is exponential), on a
// Figure 7 slice.
func WeibullSensitivity(shapes []float64, reps int, seed uint64) *plot.Table {
	t := &plot.Table{
		Title:   "Sensitivity: simulated waste vs failure distribution shape (mu=2h, alpha=0.8)",
		Columns: []string{"weibull k", "pure waste", "bi waste", "composite waste"},
	}
	p := model.Fig7Params(2*model.Hour, 0.8)
	for _, k := range shapes {
		k := k
		row := []string{fmt.Sprintf("%g", k)}
		for _, proto := range model.Protocols {
			cfg := sim.Config{
				Params: p, Protocol: proto, Reps: reps,
				Seed: rng.At(seed, uint64(k*1000)),
				Distribution: func(mtbf float64) dist.Distribution {
					return dist.WeibullWithMTBF(k, mtbf)
				},
			}
			row = append(row, fmt.Sprintf("%.4f", sim.Simulate(cfg).Waste.Mean))
		}
		t.AddRow(row...)
	}
	return t
}
