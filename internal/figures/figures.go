// Package figures expresses every table and figure of the paper's
// evaluation section (Section V) as declarative scenario specs executed by
// the internal/scenario campaign engine. Nothing here computes results
// directly: each function builds a Spec, and PaperCampaign collects the
// whole evaluation into one Campaign that cmd/figures (and, from a JSON
// file, cmd/ftcampaign) runs through the engine.
//
// Parameter choices that the paper leaves ambiguous (notably the
// checkpoint-cost scaling of Figures 8-10, whose stated form is infeasible
// at 10^6 nodes) are documented in DESIGN.md §5-S3 and EXPERIMENTS.md; both
// the paper-stated and the feasible variants are emitted.
package figures

import (
	"fmt"

	"abftckpt/internal/model"
	"abftckpt/internal/plot"
	"abftckpt/internal/scenario"
)

// Fig7Config parameterizes the Figure 7 heatmaps.
type Fig7Config struct {
	// Protocol selects the column of Figure 7 (a/b: Pure, c/d: Bi, e/f:
	// composite).
	Protocol model.Protocol
	// MTBFMinutes is the x axis in minutes (paper: 60 to 240 minutes).
	MTBFMinutes []float64
	// Alphas is the y axis, a fraction of work in [0, 1] (paper: 0 to 1).
	Alphas []float64
	// Reps is the number of simulator runs per cell for the difference
	// heatmap (paper: 1000).
	Reps int
	// Seed addresses the failure-trace streams.
	Seed uint64
	// Workers bounds engine parallelism (0: NumCPU).
	Workers int
}

// Fig7Spec returns the scenario spec of one Figure 7 heatmap; output is
// "model", "sim" or "diff". Seed and Reps only apply to the
// simulation-backed outputs (the engine rejects them on "model").
func Fig7Spec(name string, cfg Fig7Config, output string) *scenario.Spec {
	spec := &scenario.Spec{
		Name:     name,
		Kind:     scenario.KindHeatmap,
		Output:   output,
		Protocol: protoName(cfg.Protocol),
		Platform: "paper-fig7",
	}
	if len(cfg.MTBFMinutes) > 0 {
		spec.MTBFMinutes = &scenario.Axis{Values: cfg.MTBFMinutes}
	}
	if len(cfg.Alphas) > 0 {
		spec.Alphas = &scenario.Axis{Values: cfg.Alphas}
	}
	if output != scenario.OutputModel {
		seed := cfg.Seed
		spec.Seed = &seed
		if cfg.Reps > 0 {
			spec.Reps = cfg.Reps
		}
	}
	return spec
}

// Fig7Model computes the model-predicted waste heatmap (Figures 7a/7c/7e).
func Fig7Model(cfg Fig7Config) *plot.Heatmap {
	return runOne(Fig7Spec("fig7_model", cfg, scenario.OutputModel), cfg.Workers).Heatmap
}

// Fig7Sim computes the simulator-measured waste heatmap.
func Fig7Sim(cfg Fig7Config) *plot.Heatmap {
	return runOne(Fig7Spec("fig7_sim", cfg, scenario.OutputSim), cfg.Workers).Heatmap
}

// Fig7Diff computes the difference heatmap WASTE_simul - WASTE_model
// (Figures 7b/7d/7f).
func Fig7Diff(cfg Fig7Config) *plot.Heatmap {
	return runOne(Fig7Spec("fig7_diff", cfg, scenario.OutputDiff), cfg.Workers).Heatmap
}

// protoName maps a model protocol to its scenario-file name (panics on an
// unknown protocol; see scenario.ProtocolName).
func protoName(p model.Protocol) string { return scenario.ProtocolName(p) }

// protocolSeries lists the three protocols on one platform, with an
// optional display-name suffix.
func protocolSeries(platform, suffix string) []scenario.SeriesSpec {
	out := make([]scenario.SeriesSpec, 0, 3)
	for _, proto := range model.Protocols {
		out = append(out, scenario.SeriesSpec{
			Name:     proto.String() + suffix,
			Platform: platform,
			Protocol: protoName(proto),
		})
	}
	return out
}

func boolPtr(b bool) *bool { return &b }

// Fig8Spec returns the Figure 8 scenario spec: weak scaling with alpha
// fixed at 0.8. The headline series uses constant (scalable-storage)
// checkpoint cost — the variant under which the published curve shapes stay
// feasible at 10^6 nodes. The composite pays its forced phase-switch
// checkpoints in every epoch (the faithful Section III protocol), which
// reproduces the published crossover in the 10^5..10^6 decade; an amortized
// variant and the paper-stated linear checkpoint scaling are emitted
// alongside (the latter drives every protocol infeasible at extreme scale,
// see DESIGN.md §5-S3).
func Fig8Spec(nodes []float64) *scenario.Spec {
	series := append(
		protocolSeries("paper-fig8-const-ckpt", ""),
		scenario.SeriesSpec{
			Name:            model.AbftPeriodicCkpt.String() + " (amortized ckpts)",
			Platform:        "paper-fig8-const-ckpt",
			Protocol:        scenario.ProtoAbft,
			AggregateEpochs: boolPtr(true),
		},
	)
	series = append(series, protocolSeries("paper-fig8-linear-ckpt", " (C~x)")...)
	return &scenario.Spec{
		Name:   "fig8",
		Kind:   scenario.KindScaling,
		Title:  "Figure 8: weak scaling, alpha=0.8",
		Nodes:  nodesAxis(nodes),
		Series: series,
	}
}

// Fig9Spec returns the Figure 9 spec: weak scaling with an O(n^2) GENERAL
// phase, so alpha grows from 0.55 at 1k nodes to 0.975 at 1M nodes. The
// headline series uses the paper-stated linear checkpoint scaling — showing
// memory-proportional checkpointing collapsing at scale — with the
// composite's forced checkpoints amortized over the run (per-epoch forced
// checkpoints of cost C ~ x on sub-minute epochs would smother every
// advantage; the per-epoch series is emitted as a variant). The
// constant-cost scenario is Figure 10.
func Fig9Spec(nodes []float64) *scenario.Spec {
	series := make([]scenario.SeriesSpec, 0, 4)
	for _, sp := range protocolSeries("paper-fig9-linear-ckpt", "") {
		sp.AggregateEpochs = boolPtr(true)
		series = append(series, sp)
	}
	series = append(series, scenario.SeriesSpec{
		Name:     model.AbftPeriodicCkpt.String() + " (per-epoch ckpts)",
		Platform: "paper-fig9-linear-ckpt",
		Protocol: scenario.ProtoAbft,
	})
	return &scenario.Spec{
		Name:   "fig9",
		Kind:   scenario.KindScaling,
		Title:  "Figure 9: weak scaling, variable alpha",
		Nodes:  nodesAxis(nodes),
		Series: series,
	}
}

// Fig10Spec returns the Figure 10 spec: the Figure 9 scenario with
// checkpoint and recovery time independent of the node count (C = R = 60 s).
func Fig10Spec(nodes []float64) *scenario.Spec {
	return &scenario.Spec{
		Name:   "fig10",
		Kind:   scenario.KindScaling,
		Title:  "Figure 10: weak scaling, constant checkpoint time",
		Nodes:  nodesAxis(nodes),
		Series: protocolSeries("paper-fig10", ""),
	}
}

func nodesAxis(nodes []float64) *scenario.Axis {
	if len(nodes) == 0 {
		return &scenario.Axis{Preset: "paper-nodes"}
	}
	return &scenario.Axis{Values: nodes}
}

// Fig8 evaluates the Figure 8 spec and returns the waste and
// expected-fault-count charts (the two stacked panels of the figure).
func Fig8(nodes []float64) (waste, faults *plot.LineChart) {
	return runCharts(Fig8Spec(nodes))
}

// Fig9 evaluates the Figure 9 spec.
func Fig9(nodes []float64) (waste, faults *plot.LineChart) {
	return runCharts(Fig9Spec(nodes))
}

// Fig10 evaluates the Figure 10 spec.
func Fig10(nodes []float64) (waste, faults *plot.LineChart) {
	return runCharts(Fig10Spec(nodes))
}

// Fig10ParitySpec reproduces the paper's closing claim: at 10^6 nodes with
// C = R = 60 s the periodic protocols lose to the composite, and only a 10x
// cheaper checkpoint (C = R = 6 s) brings PurePeriodicCkpt to comparable
// performance.
func Fig10ParitySpec() *scenario.Spec {
	nodes := 1_000_000.0
	cheap := 6.0
	return &scenario.Spec{
		Name:    "table_fig10_parity",
		Kind:    scenario.KindPoints,
		Title:   "Figure 10 parity check at 1M nodes (per-epoch model)",
		AtNodes: &nodes,
		Rows: []scenario.PointSpec{
			{Label: "PurePeriodicCkpt C=R=60s", Platform: "paper-fig10", Protocol: scenario.ProtoPure},
			{Label: "BiPeriodicCkpt C=R=60s", Platform: "paper-fig10", Protocol: scenario.ProtoBi},
			{Label: "ABFT&PeriodicCkpt C=R=60s", Platform: "paper-fig10", Protocol: scenario.ProtoAbft},
			{Label: "PurePeriodicCkpt C=R=6s (10x cheaper)", Platform: "paper-fig10", Protocol: scenario.ProtoPure,
				Overrides: &scenario.ScalingOverride{CkptAtBase: &cheap}},
		},
	}
}

// Fig10ParityTable evaluates Fig10ParitySpec.
func Fig10ParityTable() *plot.Table {
	return runOne(Fig10ParitySpec(), 0).Table
}

// PeriodsSpec compares the checkpoint-period formulas (Eq. 11 vs Young 1974
// vs Daly 2004) and the waste each induces, over representative platforms.
func PeriodsSpec() *scenario.Spec {
	return &scenario.Spec{
		Name: "table_periods",
		Kind: scenario.KindPeriods,
		// Defaults: C in {1min, 10min}, MTBF in {1h, 6h, 1d}, D = 1min.
	}
}

// PeriodTable evaluates PeriodsSpec.
func PeriodTable() *plot.Table {
	return runOne(PeriodsSpec(), 0).Table
}

// AblationEpochsSpec contrasts per-epoch forced checkpoints (the faithful
// Section III protocol) with whole-application aggregation, for the
// Figure 8 scalable-storage scenario.
func AblationEpochsSpec(nodes []float64) *scenario.Spec {
	return &scenario.Spec{
		Name:     "table_ablation_epochs",
		Kind:     scenario.KindAblation,
		Variant:  scenario.VariantEpochs,
		Platform: "paper-fig8-const-ckpt",
		Nodes:    nodesAxis(nodes),
	}
}

// AblationEpochAggregation evaluates AblationEpochsSpec.
func AblationEpochAggregation(nodes []float64) *plot.Table {
	return runOne(AblationEpochsSpec(nodes), 0).Table
}

// AblationSafeguardSpec contrasts the composite with and without the
// Section III-B safeguard on the Figure 8 scenario.
func AblationSafeguardSpec(nodes []float64) *scenario.Spec {
	return &scenario.Spec{
		Name:     "table_ablation_safeguard",
		Kind:     scenario.KindAblation,
		Variant:  scenario.VariantSafeguard,
		Platform: "paper-fig8-const-ckpt",
		Nodes:    nodesAxis(nodes),
	}
}

// AblationSafeguard evaluates AblationSafeguardSpec.
func AblationSafeguard(nodes []float64) *plot.Table {
	return runOne(AblationSafeguardSpec(nodes), 0).Table
}

// DistCase names one failure-process case of a sensitivity scan: a
// distribution from the catalogue (see scenario.DistSpec) normalized to the
// platform MTBF, so every case is compared at equal MTBF.
type DistCase struct {
	// Name is the table row label.
	Name string
	// Dist is "exp", "weibull", "gamma" or "lognormal"; Shape is the
	// Weibull/gamma shape k or the log-normal sigma.
	Dist  string
	Shape float64
}

// DefaultDistCases returns the catalogue scanned by DistributionSensitivity:
// the exponential baseline plus Weibull, gamma and log-normal shapes spanning
// infant-mortality (k < 1), burn-in (k > 1) and heavy-tailed regimes.
func DefaultDistCases() []DistCase {
	return []DistCase{
		{"exponential", scenario.DistExponential, 0},
		{"weibull k=0.5", scenario.DistWeibull, 0.5},
		{"weibull k=0.7", scenario.DistWeibull, 0.7},
		{"weibull k=2", scenario.DistWeibull, 2},
		{"gamma k=0.5", scenario.DistGamma, 0.5},
		{"gamma k=3", scenario.DistGamma, 3},
		{"lognormal s=1", scenario.DistLogNormal, 1},
		{"lognormal s=1.5", scenario.DistLogNormal, 1.5},
	}
}

// DistSensitivitySpec measures simulated waste for the three protocols
// under every failure process of cases, all normalized to the same platform
// MTBF (mu=2h on the Figure 7 slice) — the paper's Section V realism check
// widened from Weibull-only to the full distribution catalogue.
func DistSensitivitySpec(cases []DistCase, reps int, seed uint64) *scenario.Spec {
	spec := &scenario.Spec{
		Name: "table_dist_sensitivity",
		Kind: scenario.KindSensitivity,
		Reps: reps,
		Seed: &seed,
	}
	for _, c := range cases {
		spec.Cases = append(spec.Cases, scenario.CaseSpec{Name: c.Name, Dist: c.Dist, Shape: c.Shape})
	}
	return spec
}

// DistributionSensitivity evaluates DistSensitivitySpec.
func DistributionSensitivity(cases []DistCase, reps int, seed uint64) *plot.Table {
	return runOne(DistSensitivitySpec(cases, reps, seed), 0).Table
}

// WeibullSensitivitySpec measures simulated composite waste under Weibull
// failures of equal MTBF but varying shape (k=1 is exponential), on a
// Figure 7 slice. Each shape's seed path reproduces the historical stream
// addressing (one stream per shape, shared by the three protocols).
func WeibullSensitivitySpec(shapes []float64, reps int, seed uint64) *scenario.Spec {
	spec := &scenario.Spec{
		Name:  "table_weibull",
		Kind:  scenario.KindSensitivity,
		Title: "Sensitivity: simulated waste vs failure distribution shape (mu=2h, alpha=0.8)",
		Label: "weibull k",
		Reps:  reps,
		Seed:  &seed,
	}
	for _, k := range shapes {
		spec.Cases = append(spec.Cases, scenario.CaseSpec{
			Name:     fmt.Sprintf("%g", k),
			Dist:     scenario.DistWeibull,
			Shape:    k,
			SeedPath: []uint64{uint64(k * 1000)},
		})
	}
	return spec
}

// WeibullSensitivity evaluates WeibullSensitivitySpec.
func WeibullSensitivity(shapes []float64, reps int, seed uint64) *plot.Table {
	return runOne(WeibullSensitivitySpec(shapes, reps, seed), 0).Table
}

// PaperCampaign collects the whole Section V evaluation — every heatmap,
// weak-scaling chart and table of cmd/figures — into one campaign. reps and
// seed parameterize the simulation-backed scenarios; withSim=false drops
// them (the -model-only mode).
func PaperCampaign(reps int, seed uint64, withSim bool) *scenario.Campaign {
	c := &scenario.Campaign{
		Name: "paper-eval",
		Seed: &seed,
		Reps: reps,
	}
	letters := map[model.Protocol]struct{ modelFig, diffFig string }{
		model.PurePeriodicCkpt: {"fig7a_pure_model", "fig7b_pure_diff"},
		model.BiPeriodicCkpt:   {"fig7c_bi_model", "fig7d_bi_diff"},
		model.AbftPeriodicCkpt: {"fig7e_abft_model", "fig7f_abft_diff"},
	}
	for _, proto := range model.Protocols {
		cfg := Fig7Config{Protocol: proto, Reps: reps, Seed: seed}
		c.Scenarios = append(c.Scenarios, Fig7Spec(letters[proto].modelFig, cfg, scenario.OutputModel))
		if withSim {
			c.Scenarios = append(c.Scenarios, Fig7Spec(letters[proto].diffFig, cfg, scenario.OutputDiff))
		}
	}
	c.Scenarios = append(c.Scenarios,
		Fig8Spec(nil), Fig9Spec(nil), Fig10Spec(nil),
		Fig10ParitySpec(), PeriodsSpec(),
		AblationEpochsSpec([]float64{1_000, 10_000, 100_000, 1_000_000}),
		AblationSafeguardSpec([]float64{1_000, 10_000, 100_000, 1_000_000}),
	)
	if withSim {
		weibull := WeibullSensitivitySpec([]float64{0.5, 0.7, 1.0}, reps, seed)
		dist := DistSensitivitySpec(DefaultDistCases(), reps, seed)
		c.Scenarios = append(c.Scenarios, weibull, dist)
	}
	return c
}

// runOne executes a single-spec campaign and returns its first artifact.
// The figures API predates error returns; an invalid spec is a programming
// error here, so it panics.
func runOne(spec *scenario.Spec, workers int) scenario.Artifact {
	arts := runSpec(spec, workers)
	return arts[0]
}

// runCharts executes a scaling spec and returns its two charts.
func runCharts(spec *scenario.Spec) (waste, faults *plot.LineChart) {
	arts := runSpec(spec, 0)
	return arts[0].Chart, arts[1].Chart
}

func runSpec(spec *scenario.Spec, workers int) []scenario.Artifact {
	r := scenario.Runner{Workers: workers}
	rep, err := r.Run(&scenario.Campaign{Name: "inline", Scenarios: []*scenario.Spec{spec}})
	if err != nil {
		panic(err)
	}
	return rep.Artifacts
}
