package figures

import (
	"abftckpt/internal/model"
	"abftckpt/internal/plot"
	"abftckpt/internal/scenario"
)

// SilentHeatmapConfig parameterizes the silent-error heatmaps: waste of the
// verified-pattern protocol over a mean-time-between-errors x
// verification-cost grid on the Figure 7 platform.
type SilentHeatmapConfig struct {
	// Recovery is "backward" (rollback, default) or "forward" (ABFT-style
	// in-place correction).
	Recovery string
	// MTBEMinutes is the x axis: mean time between silent errors, in
	// minutes (default 60 to 240 minutes, 19 points).
	MTBEMinutes []float64
	// VerifyCosts is the y axis: the cost of one verification in seconds
	// (default 30 to 600 seconds, 20 points).
	VerifyCosts []float64
	// Reps is the number of simulator runs per cell for the
	// simulation-backed outputs.
	Reps int
	// Seed addresses the silent-error streams.
	Seed uint64
	// Workers bounds engine parallelism (0: NumCPU).
	Workers int
}

// SilentHeatmapSpec returns the scenario spec of one silent-error heatmap;
// output is "model", "sim" or "diff". Seed and Reps only apply to the
// simulation-backed outputs (the engine rejects them on "model").
func SilentHeatmapSpec(name string, cfg SilentHeatmapConfig, output string) *scenario.Spec {
	spec := &scenario.Spec{
		Name:     name,
		Kind:     scenario.KindSilentHeatmap,
		Output:   output,
		Recovery: cfg.Recovery,
	}
	if len(cfg.MTBEMinutes) > 0 {
		spec.MTBEMinutes = &scenario.Axis{Values: cfg.MTBEMinutes}
	}
	if len(cfg.VerifyCosts) > 0 {
		spec.VerifyCosts = &scenario.Axis{Values: cfg.VerifyCosts}
	}
	if output != scenario.OutputModel {
		seed := cfg.Seed
		spec.Seed = &seed
		if cfg.Reps > 0 {
			spec.Reps = cfg.Reps
		}
	}
	return spec
}

// SilentHeatmapModel computes the model-predicted silent-error waste heatmap.
func SilentHeatmapModel(cfg SilentHeatmapConfig) *plot.Heatmap {
	return runOne(SilentHeatmapSpec("silent_model", cfg, scenario.OutputModel), cfg.Workers).Heatmap
}

// SilentHeatmapSim computes the simulator-measured silent-error waste heatmap.
func SilentHeatmapSim(cfg SilentHeatmapConfig) *plot.Heatmap {
	return runOne(SilentHeatmapSpec("silent_sim", cfg, scenario.OutputSim), cfg.Workers).Heatmap
}

// SilentHeatmapDiff computes the difference heatmap WASTE_simul - WASTE_model
// for the silent-error protocol.
func SilentHeatmapDiff(cfg SilentHeatmapConfig) *plot.Heatmap {
	return runOne(SilentHeatmapSpec("silent_diff", cfg, scenario.OutputDiff), cfg.Workers).Heatmap
}

// DefaultMLSeries returns the two-level checkpointing configurations of the
// multi-level evaluation: a two-level protocol (cheap in-memory checkpoints
// covering 80% of failures, expensive disk checkpoints behind them) against
// a single-level disk-only baseline at equal disk cost. Both scale the
// platform MTBF as mu = (10 years) / n — a ten-year per-node MTBF budget.
func DefaultMLSeries() []scenario.MLSeriesSpec {
	perNodeMTBF := 10 * 365.25 * model.Day
	disk := 600.0
	return []scenario.MLSeriesSpec{
		{
			Name:       "two-level",
			MTBFAtBase: &perNodeMTBF,
			C1:         30, R1: 30,
			C2: disk, R2: disk,
			Coverage: 0.8,
		},
		{
			Name:       "disk-only",
			MTBFAtBase: &perNodeMTBF,
			C2:         disk, R2: disk,
			Coverage: 0,
			K:        1,
		},
	}
}

// MultiLevelScalingSpec returns a multilevel_scaling spec sweeping the given
// series over a node axis (default: the Figures 8-10 node counts); output is
// "model" (default) or "sim".
func MultiLevelScalingSpec(name string, series []scenario.MLSeriesSpec, nodes []float64, output string) *scenario.Spec {
	spec := &scenario.Spec{
		Name:     name,
		Kind:     scenario.KindMultiLevelScaling,
		Output:   output,
		MLSeries: series,
	}
	if len(nodes) > 0 {
		spec.Nodes = &scenario.Axis{Values: nodes}
	}
	return spec
}

// MultiLevelScaling evaluates the model-output MultiLevelScalingSpec and
// returns the waste chart plus the optimal-schedule table (period and level-2
// interval K per node count).
func MultiLevelScaling(series []scenario.MLSeriesSpec, nodes []float64) (waste *plot.LineChart, schedule *plot.Table) {
	arts := runSpec(MultiLevelScalingSpec("multilevel", series, nodes, scenario.OutputModel), 0)
	return arts[0].Chart, arts[1].Table
}

// SilentCampaign collects the silent-error evaluation — backward- and
// forward-recovery model heatmaps, plus (withSim) the model-vs-simulation
// difference heatmaps — into one campaign. reps and seed parameterize the
// simulation-backed scenarios.
func SilentCampaign(reps int, seed uint64, withSim bool) *scenario.Campaign {
	c := &scenario.Campaign{
		Name:  "silent-errors",
		Notes: "Silent-error (SDC) waste: verified patterns with backward rollback vs forward ABFT-style correction, over an MTBE x verification-cost grid on the Figure 7 platform.",
		Seed:  &seed,
		Reps:  reps,
	}
	for _, rec := range model.SilentRecoveries {
		cfg := SilentHeatmapConfig{Recovery: rec.String(), Reps: reps, Seed: seed}
		c.Scenarios = append(c.Scenarios,
			SilentHeatmapSpec("silent_"+rec.String()+"_model", cfg, scenario.OutputModel))
		if withSim {
			c.Scenarios = append(c.Scenarios,
				SilentHeatmapSpec("silent_"+rec.String()+"_diff", cfg, scenario.OutputDiff))
		}
	}
	return c
}

// MultiLevelCampaign collects the multi-level checkpointing evaluation — the
// DefaultMLSeries weak-scaling sweep, model-predicted and (withSim)
// simulator-measured — into one campaign.
func MultiLevelCampaign(reps int, seed uint64, withSim bool) *scenario.Campaign {
	c := &scenario.Campaign{
		Name:  "multilevel-ckpt",
		Notes: "Two-level checkpointing (fast in-memory + slow disk) vs a disk-only baseline under weak scaling; the schedule table carries the model-optimal period and level-2 interval per node count.",
		Seed:  &seed,
		Reps:  reps,
		Scenarios: []*scenario.Spec{
			MultiLevelScalingSpec("multilevel", DefaultMLSeries(), nil, scenario.OutputModel),
		},
	}
	if withSim {
		c.Scenarios = append(c.Scenarios,
			MultiLevelScalingSpec("multilevel_sim", DefaultMLSeries(), nil, scenario.OutputSim))
	}
	return c
}
