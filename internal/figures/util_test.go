package figures

import "fmt"

// sscan parses a float cell produced by the table builders.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}
