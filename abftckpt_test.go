package abftckpt

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFacadePredict(t *testing.T) {
	p := Fig7Params(2*Hour, 0.8)
	res := Predict(AbftPeriodicCkpt, p)
	if !res.Feasible || res.Waste <= 0 || res.Waste >= 1 {
		t.Fatalf("implausible prediction: %+v", res)
	}
	all := PredictAll(p)
	if len(all) != len(Protocols) {
		t.Fatalf("PredictAll returned %d results", len(all))
	}
	if all[AbftPeriodicCkpt].Waste >= all[PurePeriodicCkpt].Waste {
		t.Error("composite should win at mu=2h, alpha=0.8")
	}
}

func TestFacadeOptimalPeriod(t *testing.T) {
	p, ok := OptimalPeriod(600, 2*Hour, 60, 600)
	if !ok {
		t.Fatal("expected feasible")
	}
	want := math.Sqrt(2 * 600 * (2*Hour - 660))
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("period = %v, want %v", p, want)
	}
}

func TestFacadeSimulate(t *testing.T) {
	p := Fig7Params(2*Hour, 0.5)
	agg := Simulate(SimConfig{Params: p, Protocol: AbftPeriodicCkpt, Reps: 50, Seed: 1})
	predicted := Predict(AbftPeriodicCkpt, p).Waste
	if math.Abs(agg.Waste.Mean-predicted) > 0.08 {
		t.Fatalf("sim %v vs model %v", agg.Waste.Mean, predicted)
	}
}

func TestFacadeScenarios(t *testing.T) {
	for _, w := range []WeakScaling{Fig8Scenario(), Fig9Scenario(), Fig10Scenario()} {
		p := w.ParamsAt(10_000)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if a := Fig9Scenario().Alpha(1_000_000); math.Abs(a-0.975) > 0.01 {
		t.Fatalf("fig9 alpha at 1M = %v", a)
	}
}

func TestFacadeDistributions(t *testing.T) {
	dists := []Distribution{
		Exponential(100),
		Weibull(0.7, 100),
		LogNormal(1.2, 100),
		GammaDist(2, 100),
		EmpiricalDist([]float64{50, 100, 150}),
	}
	for _, d := range dists {
		if got := d.Mean(); got != 100 {
			t.Errorf("%v: Mean() = %v, want exactly 100", d, got)
		}
		if lo, hi := d.CDF(0), d.CDF(1e6); lo != 0 || hi < 0.99 {
			t.Errorf("%v: CDF endpoints %v, %v", d, lo, hi)
		}
	}
	// The re-exported constructors plug straight into a campaign.
	p := Fig7Params(2*Hour, 0.5)
	agg := Simulate(SimConfig{
		Params: p, Protocol: AbftPeriodicCkpt, Reps: 30, Seed: 2,
		Distribution: func(mtbf float64) Distribution { return Weibull(0.7, mtbf) },
	})
	if agg.Waste.Mean <= 0 || agg.Waste.Mean >= 1 {
		t.Errorf("weibull campaign waste = %v", agg.Waste.Mean)
	}
}

func TestFacadeSilent(t *testing.T) {
	p := SilentParams{
		W: 100_000, MuSilent: Hour,
		V: 60, C: 120, R: 120, F: 30, Detect: 10,
	}
	for _, mode := range []SilentRecovery{SilentBackward, SilentForward} {
		res := PredictSilent(mode, p)
		if res.Waste <= 0 || res.Waste >= 1 {
			t.Fatalf("%v: implausible waste %v", mode, res.Waste)
		}
		if got := SilentOptimalPeriod(mode, p); math.Abs(got-res.Period) > 1e-9 {
			t.Errorf("%v: optimal period %v but result used %v", mode, got, res.Period)
		}
		agg := SimulateSilent(SimSilentConfig{Params: p, Mode: mode, Reps: 60, Seed: 3})
		if math.Abs(agg.Waste.Mean-res.Waste) > 0.05 {
			t.Errorf("%v: sim %v vs model %v", mode, agg.Waste.Mean, res.Waste)
		}
	}
}

func TestFacadeMultiLevel(t *testing.T) {
	p := MultiLevelParams{
		W: Week, Mu: 50_000, D: 60,
		C1: 30, R1: 30, C2: 600, R2: 600, Coverage: 0.8,
	}
	res := PredictMultiLevel(p)
	if !res.Feasible || res.K <= 0 || res.Period <= 0 {
		t.Fatalf("implausible schedule: %+v", res)
	}
	agg := SimulateMultiLevel(SimMultiLevelConfig{Params: p, Reps: 60, Seed: 4})
	if math.Abs(agg.Waste.Mean-res.Waste) > 0.05 {
		t.Errorf("sim %v vs model %v", agg.Waste.Mean, res.Waste)
	}
}

func TestFacadeSimulateWorkerInvariance(t *testing.T) {
	p := Fig7Params(2*Hour, 0.5)
	base := SimConfig{Params: p, Protocol: BiPeriodicCkpt, Reps: 24, Seed: 6}
	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8
	if Simulate(serial) != Simulate(parallel) {
		t.Error("facade Simulate not worker-count invariant")
	}
}

func TestFacadeCampaignServing(t *testing.T) {
	c, err := LoadCampaignFile("examples/campaigns/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Unique == 0 || plan.Unique > plan.Cells || len(plan.Scenarios) != len(c.Scenarios) {
		t.Fatalf("unexpected plan: %+v", plan)
	}
	// The embeddable handler serves the same API as cmd/ftserve; one
	// synchronous cell through the shared cache proves the wiring.
	cache := NewCellCache(t.TempDir(), 64)
	ts := httptest.NewServer(NewCampaignHandler(cache, 2))
	defer ts.Close()
	body := `{"op": "periods", "probe": {"c": 60, "mu": 3600, "d": 60, "r": 60}}`
	for i, want := range []string{"exec", "mem"} {
		resp, err := http.Post(ts.URL+"/v1/cells", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != want {
			t.Fatalf("cell request %d: code %d X-Cache %q, want 200 %q",
				i, resp.StatusCode, resp.Header.Get("X-Cache"), want)
		}
	}
	if stats := cache.Stats(); stats.Executed != 1 || stats.MemHits != 1 {
		t.Errorf("cache stats: %+v, want 1 execution and 1 memory hit", stats)
	}
}

func TestFacadeCampaign(t *testing.T) {
	c, err := LoadCampaignFile("examples/campaigns/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}
	// Run only the analytic scenarios to keep the facade test fast.
	var fast []*CampaignSpec
	for _, s := range c.Scenarios {
		switch s.Name {
		case "periods", "parity":
			fast = append(fast, s)
		}
	}
	c.Scenarios = fast
	rep, err := RunCampaign(c, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Artifacts) != 2 || rep.Executed == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}
