package abftckpt

import (
	"math"
	"testing"
)

func TestFacadePredict(t *testing.T) {
	p := Fig7Params(2*Hour, 0.8)
	res := Predict(AbftPeriodicCkpt, p)
	if !res.Feasible || res.Waste <= 0 || res.Waste >= 1 {
		t.Fatalf("implausible prediction: %+v", res)
	}
	all := PredictAll(p)
	if len(all) != len(Protocols) {
		t.Fatalf("PredictAll returned %d results", len(all))
	}
	if all[AbftPeriodicCkpt].Waste >= all[PurePeriodicCkpt].Waste {
		t.Error("composite should win at mu=2h, alpha=0.8")
	}
}

func TestFacadeOptimalPeriod(t *testing.T) {
	p, ok := OptimalPeriod(600, 2*Hour, 60, 600)
	if !ok {
		t.Fatal("expected feasible")
	}
	want := math.Sqrt(2 * 600 * (2*Hour - 660))
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("period = %v, want %v", p, want)
	}
}

func TestFacadeSimulate(t *testing.T) {
	p := Fig7Params(2*Hour, 0.5)
	agg := Simulate(SimConfig{Params: p, Protocol: AbftPeriodicCkpt, Reps: 50, Seed: 1})
	predicted := Predict(AbftPeriodicCkpt, p).Waste
	if math.Abs(agg.Waste.Mean-predicted) > 0.08 {
		t.Fatalf("sim %v vs model %v", agg.Waste.Mean, predicted)
	}
}

func TestFacadeScenarios(t *testing.T) {
	for _, w := range []WeakScaling{Fig8Scenario(), Fig9Scenario(), Fig10Scenario()} {
		p := w.ParamsAt(10_000)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if a := Fig9Scenario().Alpha(1_000_000); math.Abs(a-0.975) > 0.01 {
		t.Fatalf("fig9 alpha at 1M = %v", a)
	}
}
