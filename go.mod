module abftckpt

go 1.24
