// ABFT LU: factor a linear system while losing a row of the trailing matrix
// mid-factorization, recover it from the column checksums, and solve —
// demonstrating the LIBRARY-phase mechanics the composite protocol relies
// on (checksum reconstruction instead of rollback).
package main

import (
	"fmt"
	"math"
	"os"

	"abftckpt/internal/abft"
	"abftckpt/internal/matrix"
	"abftckpt/internal/rng"
)

func main() {
	const n = 128
	src := rng.New(3)

	// Build a diagonally dominant system A x = b with known solution.
	a := matrix.RandDiagDominant(n, src)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = src.Float64()*2 - 1
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.RowView(i)
		for j := 0; j < n; j++ {
			b[i] += row[j] * xTrue[j]
		}
	}

	// Factor under ABFT protection, killing a row halfway through.
	f := abft.NewLU(a)
	for f.StepsDone() < n/2 {
		if err := f.Step(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	victim := n/2 + 10
	fmt.Printf("factoring %dx%d system; row %d lost after %d elimination steps\n",
		n, n, victim, f.StepsDone())
	f.EraseRow(victim)

	// The checksum invariant detects the loss, then repairs it.
	if err := f.Verify(1e-7); err == nil {
		fmt.Fprintln(os.Stderr, "erasure not detected")
		os.Exit(1)
	}
	if err := f.RecoverRow(victim); err != nil {
		fmt.Fprintln(os.Stderr, "recovery:", err)
		os.Exit(1)
	}
	fmt.Println("row reconstructed from column checksums; resuming factorization")
	if err := f.Factor(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Solve and check against the known solution.
	lu := f.LU().Clone()
	matrix.SolveLU(lu, b)
	var maxErr float64
	for i := range xTrue {
		if d := math.Abs(b[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("residual ||A-LU||/||A|| = %.3g, max |x - x_true| = %.3g\n",
		matrix.LUResidual(a, f.LU()), maxErr)
	if maxErr > 1e-7 {
		fmt.Fprintln(os.Stderr, "FAIL: solution inaccurate")
		os.Exit(1)
	}
	fmt.Println("ok: failure was transparent to the solver")
}
