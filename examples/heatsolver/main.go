// Heat solver: run the paper's motivating application class — an iterative
// code alternating a stencil-style GENERAL phase with an ABFT-protected
// LIBRARY phase — on the virtual process runtime under the composite
// protocol, with random failures injected, and prove that the final state
// matches the failure-free execution.
package main

import (
	"fmt"
	"math"
	"os"

	"abftckpt/internal/app"
	"abftckpt/internal/ckpt"
	"abftckpt/internal/vproc"
)

func run(inj *vproc.Injector, epochs int) (*app.Heat, error) {
	cfg := app.Config{
		DataProcs:     6,
		N:             48,
		NB:            4,
		BlocksPerProc: 2,
		LibSteps:      8,
		GeneralSteps:  10,
		CkptEvery:     3,
		Seed:          7,
	}
	rt := vproc.NewRuntime(cfg.DataProcs+1, ckpt.NewMemStore(), inj)
	h := app.New(cfg, rt)
	return h, h.Run(epochs)
}

func main() {
	const epochs = 3

	clean, err := run(nil, epochs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fault-free run:", err)
		os.Exit(1)
	}

	// ~6% failure probability per superstep: a hostile platform.
	faulty, err := run(vproc.NewInjector(0.06, 99), epochs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulty run:", err)
		os.Exit(1)
	}

	s := faulty.RT.Stats
	fmt.Printf("failures injected:       %d (%d in GENERAL phases, %d in LIBRARY phases)\n",
		s.Failures, s.GeneralFails, s.LibraryFails)
	fmt.Printf("rollbacks (ckpt/restart): %d, supersteps replayed: %d\n", s.Rollbacks, s.ReplayedSteps)
	fmt.Printf("ABFT forward recoveries:  %d (no library work re-executed)\n", s.AbftRecoveries)
	fmt.Printf("checkpoints:              %d full periodic, %d forced partial\n", s.FullCkpts, s.PartialCkpts)

	var maxDiff float64
	cf, ff := clean.FieldData(), faulty.FieldData()
	for i := range cf.Data {
		if d := math.Abs(cf.Data[i] - ff.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |field difference| vs failure-free run: %.3g\n", maxDiff)
	if maxDiff > 1e-6 {
		fmt.Fprintln(os.Stderr, "FAIL: results diverged")
		os.Exit(1)
	}
	fmt.Println("ok: failures changed nothing but the runtime")
}
