// Quickstart: predict the waste of the three fault-tolerance protocols with
// the analytical model, then validate the prediction with the discrete-event
// simulator — the paper's core workflow in ~40 lines.
package main

import (
	"fmt"

	"abftckpt"
)

func main() {
	// The paper's Figure 7 scenario: a one-week epoch, 10-minute
	// checkpoints, 2-hour platform MTBF, 80% of the time spent in an
	// ABFT-protectable library call.
	params := abftckpt.Fig7Params(2*abftckpt.Hour, 0.8)
	fmt.Println("scenario:", params)

	period, feasible := abftckpt.OptimalPeriod(params.C, params.Mu, params.D, params.R)
	fmt.Printf("optimal checkpoint period (Eq. 11): %.0f s (feasible: %v)\n\n", period, feasible)

	fmt.Printf("%-22s %-12s %-14s\n", "protocol", "model waste", "simulated waste")
	for _, proto := range abftckpt.Protocols {
		predicted := abftckpt.Predict(proto, params)
		simulated := abftckpt.Simulate(abftckpt.SimConfig{
			Params:   params,
			Protocol: proto,
			Reps:     200,
			Seed:     42,
		})
		fmt.Printf("%-22s %-12.4f %.4f ±%.4f\n",
			proto, predicted.Waste, simulated.Waste.Mean, simulated.Waste.CI95)
	}
	fmt.Println("\nThe composite protocol (ABFT&PeriodicCkpt) wins: it disables periodic")
	fmt.Println("checkpoints during the 80% of time spent in the library, and failures")
	fmt.Println("there cost only a cheap checksum reconstruction instead of a rollback.")
}
