// Weak-scaling study: reproduce the paper's Figures 8-10 analysis from the
// public API — how the three protocols scale from 1k to 1M nodes, where the
// composite protocol overtakes periodic checkpointing, and what the
// "perfectly scalable checkpointing" hypothesis changes.
package main

import (
	"fmt"

	"abftckpt"
)

func row(label string, results map[abftckpt.Protocol]abftckpt.Result) {
	fmt.Printf("%-10s", label)
	for _, proto := range abftckpt.Protocols {
		r := results[proto]
		if r.Feasible {
			fmt.Printf("  %8.4f", r.Waste)
		} else {
			fmt.Printf("  %8s", "infeas.")
		}
	}
	fmt.Println()
}

func study(title string, w abftckpt.WeakScaling, nodes []float64) {
	fmt.Println(title)
	fmt.Printf("%-10s  %8s  %8s  %8s\n", "nodes", "pure", "bi", "abft")
	pts := w.Sweep(nodes, abftckpt.Options{})
	for _, pt := range pts {
		row(fmt.Sprintf("%.0f", pt.Nodes), pt.Results)
	}
	fmt.Println()
}

func main() {
	nodes := []float64{1_000, 10_000, 100_000, 1_000_000}

	// Figure 8: both phases scale as O(sqrt(x)), alpha fixed at 0.8,
	// scalable (constant-cost) checkpoint storage.
	study("Figure 8 scenario (alpha = 0.8, C = R = 60 s constant):",
		abftckpt.Fig8Scenario(), nodes)

	// Figure 9: the GENERAL phase is O(n^2) (constant parallel time), so
	// alpha grows with scale; checkpoint cost scales with total memory as
	// the paper states — and collapses at extreme scale.
	fig9 := abftckpt.Fig9Scenario()
	fig9.AggregateEpochs = true
	study("Figure 9 scenario (variable alpha, C = R proportional to memory):", fig9, nodes)

	// Figure 10: same application, but checkpoint time independent of the
	// node count — periodic checkpointing is rescued, yet still loses to
	// the composite at 1M nodes.
	study("Figure 10 scenario (variable alpha, C = R = 60 s constant):",
		abftckpt.Fig10Scenario(), nodes)

	// The paper's closing claim: only a 10x cheaper checkpoint brings
	// PurePeriodicCkpt to parity with the composite at 1M nodes.
	w := abftckpt.Fig10Scenario()
	p := w.ParamsAt(1_000_000)
	composite := abftckpt.Predict(abftckpt.AbftPeriodicCkpt, p)
	cheap := p
	cheap.C, cheap.R = 6, 6
	pure6 := abftckpt.Predict(abftckpt.PurePeriodicCkpt, cheap)
	fmt.Printf("Parity check at 1M nodes: composite waste %.4f vs PurePeriodicCkpt with C=R=6s %.4f\n",
		composite.Waste, pure6.Waste)
}
