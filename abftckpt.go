// Package abftckpt is a Go reproduction of Bosilca, Bouteiller, Hérault,
// Robert & Dongarra, "Assessing the Impact of ABFT and Checkpoint Composite
// Strategies" (APDCM/IPDPSW 2014).
//
// It provides, as one library:
//
//   - the paper's first-order analytical model of the three fault-tolerance
//     protocols (PurePeriodicCkpt, BiPeriodicCkpt, ABFT&PeriodicCkpt) with
//     optimal checkpoint periods and waste prediction;
//   - the discrete-event protocol simulator used to validate the model,
//     with parallel Monte-Carlo replicas and a catalogue of failure
//     processes (exponential, Weibull, log-normal, gamma, and empirical
//     replay of recorded inter-arrival samples), all normalizable to a
//     common MTBF;
//   - the weak-scaling scenario generators behind the paper's Figures 8-10;
//   - the substrates a real composite deployment needs: ABFT-encoded dense
//     linear algebra (checksummed GEMM and LU with single-failure
//     recovery), coordinated/partial/incremental checkpointing, and a
//     virtual process runtime executing the composite protocol on live
//     application state.
//
// This root package is a thin facade over the internal packages; examples/
// and cmd/ show complete usage.
package abftckpt

import (
	"io"
	"net/http"

	"abftckpt/internal/dist"
	"abftckpt/internal/model"
	"abftckpt/internal/scenario"
	"abftckpt/internal/server"
	"abftckpt/internal/sim"
)

// Protocol identifies a fault-tolerance strategy.
type Protocol = model.Protocol

// The three protocols compared by the paper.
const (
	PurePeriodicCkpt = model.PurePeriodicCkpt
	BiPeriodicCkpt   = model.BiPeriodicCkpt
	AbftPeriodicCkpt = model.AbftPeriodicCkpt
)

// Protocols lists all protocols in presentation order.
var Protocols = model.Protocols

// Params gathers application and platform parameters (Section IV-A).
type Params = model.Params

// Result is a model prediction for one protocol on one epoch.
type Result = model.Result

// Options tunes protocol variants (safeguard rule, fixed periods).
type Options = model.Options

// Time unit helpers, in seconds.
const (
	Second = model.Second
	Minute = model.Minute
	Hour   = model.Hour
	Day    = model.Day
	Week   = model.Week
)

// Predict evaluates the analytical model (Equations (1)-(14)) for one
// protocol on one epoch.
func Predict(proto Protocol, p Params) Result {
	return model.Evaluate(proto, p, model.Options{})
}

// PredictAll evaluates the model for all three protocols.
func PredictAll(p Params) map[Protocol]Result {
	return model.EvaluateAll(p, model.Options{})
}

// OptimalPeriod returns the Eq. (11) checkpoint period
// sqrt(2*C*(mu - D - R)) and whether the protocol is feasible at first
// order.
func OptimalPeriod(ckptCost, mtbf, downtime, recovery float64) (period float64, feasible bool) {
	return model.OptimalPeriod(ckptCost, mtbf, downtime, recovery)
}

// Distribution is a failure inter-arrival law: Sample plus analytic Mean and
// CDF (see internal/dist).
type Distribution = dist.Distribution

// The failure-process catalogue, re-exported so SimConfig.Distribution can
// be populated from outside the module. Every constructor is normalized so
// the mean inter-arrival time equals mtbf exactly, keeping scenarios with
// different failure processes comparable at equal platform MTBF.

// Exponential returns the paper's memoryless baseline failure law.
func Exponential(mtbf float64) Distribution { return dist.NewExponential(mtbf) }

// Weibull returns the Weibull law of the given shape k (k < 1: infant
// mortality), scale solved so the mean equals mtbf.
func Weibull(shape, mtbf float64) Distribution { return dist.WeibullWithMTBF(shape, mtbf) }

// LogNormal returns the heavy-tailed log-normal law of the given sigma with
// mean mtbf.
func LogNormal(sigma, mtbf float64) Distribution { return dist.LogNormalWithMTBF(sigma, mtbf) }

// GammaDist returns the gamma law of the given shape k with mean mtbf.
func GammaDist(shape, mtbf float64) Distribution { return dist.GammaWithMTBF(shape, mtbf) }

// EmpiricalDist replays recorded inter-arrival samples (e.g. gaps measured
// from a cluster failure log) by uniform resampling.
func EmpiricalDist(samples []float64) Distribution { return dist.NewEmpirical(samples) }

// SimConfig configures a simulation campaign (see internal/sim for the
// extended knobs: failure distributions, worker count, safeguard, caps).
type SimConfig = sim.Config

// SimAggregate summarizes a simulation campaign.
type SimAggregate = sim.Aggregate

// Simulate runs the discrete-event simulator: Reps independent executions
// of the protocol over random failure traces, run across a worker pool and
// aggregated with confidence intervals. Results are bit-identical for any
// worker count at a fixed seed.
func Simulate(cfg SimConfig) SimAggregate {
	return sim.Simulate(cfg)
}

// TraceArena is a materialized failure process: per-repetition arrival
// streams generated once and replayed across simulation campaigns that
// share the process (see SimulateFromTrace).
type TraceArena = sim.TraceArena

// BuildTraceArena materializes the failure process (d, seed, reps) through
// the given horizon; see sim.BuildTraceArena.
func BuildTraceArena(d Distribution, seed uint64, reps int, horizon float64) *TraceArena {
	return sim.BuildTraceArena(d, seed, reps, horizon)
}

// SimulateFromTrace runs the simulator like Simulate but replays failure
// arrivals from a prebuilt arena — bit-identical results, with the stream
// generation cost paid once per arena instead of once per campaign.
func SimulateFromTrace(cfg SimConfig, tr *TraceArena) SimAggregate {
	return sim.SimulateFromTrace(cfg, tr)
}

// SimPrecision configures adaptive-precision execution: a CI half-width
// target that turns cfg.Reps into a cap (see sim.Precision).
type SimPrecision = sim.Precision

// SimAdaptiveAggregate extends SimAggregate with the sequential-stopping
// estimate, its half-width and the control-variate diagnostics.
type SimAdaptiveAggregate = sim.AdaptiveAggregate

// SimulateAdaptive runs replicas in doubling batches until the waste CI
// half-width meets the precision target (or cfg.Reps is exhausted, where
// the result is bit-identical to Simulate's aggregate). Under exponential
// failures the analytic model prediction serves as a control variate.
func SimulateAdaptive(cfg SimConfig, prec SimPrecision) SimAdaptiveAggregate {
	return sim.SimulateAdaptive(cfg, prec)
}

// SimulateAdaptiveFromTrace is SimulateAdaptive over a prebuilt arena
// covering at least cfg.Reps repetitions — identical results to the live
// path, including the control-variate statistics.
func SimulateAdaptiveFromTrace(cfg SimConfig, tr *TraceArena, prec SimPrecision) SimAdaptiveAggregate {
	return sim.SimulateAdaptiveFromTrace(cfg, tr, prec)
}

// SilentRecovery selects how a verified-pattern protocol recovers from a
// detected silent error: backward rollback or forward ABFT-style
// correction.
type SilentRecovery = model.SilentRecovery

// The two silent-error recovery modes.
const (
	SilentBackward = model.SilentBackward
	SilentForward  = model.SilentForward
)

// SilentParams gathers the silent-error protocol parameters: work,
// mean time between silent errors, verification/checkpoint/recovery
// costs, forward-correction cost and detection latency.
type SilentParams = model.SilentParams

// SilentResult is the model prediction for one silent-error
// configuration.
type SilentResult = model.SilentResult

// PredictSilent evaluates the silent-error waste model for one recovery
// mode; a zero Period picks the mode's optimal period.
func PredictSilent(mode SilentRecovery, p SilentParams) SilentResult {
	return model.EvaluateSilent(mode, p)
}

// SilentOptimalPeriod returns the first-order optimal verification period
// for the given recovery mode.
func SilentOptimalPeriod(mode SilentRecovery, p SilentParams) float64 {
	return model.SilentOptimalPeriod(mode, p)
}

// SimSilentConfig configures the silent-error simulator (see
// sim.SilentConfig).
type SimSilentConfig = sim.SilentConfig

// SimulateSilent runs the silent-error Monte-Carlo simulator: Reps
// executions under exponential error injection with periodic
// verification, aggregated like Simulate.
func SimulateSilent(cfg SimSilentConfig) SimAggregate {
	return sim.SimulateSilent(cfg)
}

// MultiLevelParams gathers the two-level checkpointing parameters: fast
// level-1 and slow level-2 costs, the level-1 failure coverage, and the
// platform MTBF.
type MultiLevelParams = model.MultiLevelParams

// MultiLevelResult is the model prediction for one two-level
// configuration, including the optimal period and level-2 interval K.
type MultiLevelResult = model.MultiLevelResult

// PredictMultiLevel evaluates the two-level checkpointing model,
// optimizing the period and level-2 interval when unset.
func PredictMultiLevel(p MultiLevelParams) MultiLevelResult {
	return model.EvaluateMultiLevel(p)
}

// SimMultiLevelConfig configures the multi-level simulator (see
// sim.MultiLevelConfig).
type SimMultiLevelConfig = sim.MultiLevelConfig

// SimulateMultiLevel runs the two-level checkpointing Monte-Carlo
// simulator: failures draw a recovery level from the coverage lottery,
// aggregated like Simulate.
func SimulateMultiLevel(cfg SimMultiLevelConfig) SimAggregate {
	return sim.SimulateMultiLevel(cfg)
}

// Fig7Params returns the paper's Figure 7 scenario: a one-week epoch with
// C = R = 10 min, D = 1 min, rho = 0.8, phi = 1.03, ReconsABFT = 2 s.
func Fig7Params(mtbf, alpha float64) Params {
	return model.Fig7Params(mtbf, alpha)
}

// WeakScaling describes the Section V-C weak-scaling scenarios.
type WeakScaling = model.WeakScaling

// Fig8Scenario, Fig9Scenario and Fig10Scenario return the paper's
// weak-scaling studies; see internal/model and DESIGN.md §5-S3 for the
// checkpoint-cost-scaling caveat.
func Fig8Scenario() WeakScaling  { return model.Fig8Scenario(model.ScaleConstant) }
func Fig9Scenario() WeakScaling  { return model.Fig9Scenario(model.ScaleLinear) }
func Fig10Scenario() WeakScaling { return model.Fig10Scenario() }

// Campaign is a declarative scenario campaign: a named list of scenario
// specs (platform, protocol, failure law, sweep axes, replica count, seed —
// all durations in seconds) that the engine expands into content-addressed
// cells. See internal/scenario and the JSON schema in README.md.
type Campaign = scenario.Campaign

// CampaignSpec declares one scenario of a campaign.
type CampaignSpec = scenario.Spec

// CampaignRunner executes campaigns with an optional on-disk cell cache;
// rerunning an unchanged campaign re-executes zero cells.
type CampaignRunner = scenario.Runner

// CampaignReport summarizes a campaign run: cell counts (total, unique,
// cached, executed) and the finished artifacts in campaign order.
type CampaignReport = scenario.Report

// CampaignArtifact is one finished campaign output (heatmap, chart or
// table) with CSV, ASCII and gnuplot renderings.
type CampaignArtifact = scenario.Artifact

// LoadCampaign parses and validates a campaign from its JSON form. Unknown
// fields are rejected so typos fail loudly.
func LoadCampaign(r io.Reader) (*Campaign, error) { return scenario.Load(r) }

// LoadCampaignFile reads and validates a campaign file.
func LoadCampaignFile(path string) (*Campaign, error) { return scenario.LoadFile(path) }

// RunCampaign executes a campaign with the given cell cache directory
// (empty disables caching) and returns the report with all artifacts.
func RunCampaign(c *Campaign, cacheDir string) (*CampaignReport, error) {
	r := scenario.Runner{CacheDir: cacheDir}
	return r.Run(c)
}

// CampaignPlan describes an expanded campaign before execution: cell
// counts (total and unique) and every scenario's cells and artifact names.
type CampaignPlan = scenario.Plan

// PlanCampaign validates and expands a campaign without executing
// anything.
func PlanCampaign(c *Campaign) (*CampaignPlan, error) { return scenario.PlanCampaign(c) }

// CellCache is the two-tier cell cache: a size-bounded in-memory LRU with
// singleflight request coalescing over the content-hashed on-disk store.
// Share one CellCache between campaign runs (CampaignRunner.Cache) and
// servers so identical concurrent requests execute once and hot cells are
// served without touching disk.
type CellCache = scenario.CellCache

// NewCellCache returns a cell cache over dir (empty disables the disk
// tier) holding at most memCells results in memory (<= 0 picks the
// default).
func NewCellCache(dir string, memCells int) *CellCache {
	return scenario.NewCellCache(dir, memCells)
}

// NewCampaignHandler returns the campaign HTTP API (the one cmd/ftserve
// serves) as an http.Handler, evaluating everything through the given
// shared cache: POST /v1/campaigns, GET /v1/jobs/{id}, artifact CSV
// streaming, and synchronous POST /v1/cells. workers bounds cell-level
// parallelism per campaign job (0: NumCPU).
func NewCampaignHandler(cache *CellCache, workers int) http.Handler {
	return server.New(server.Config{Cache: cache, Workers: workers}).Handler()
}
